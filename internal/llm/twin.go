package llm

import (
	"fmt"
	"math"

	"edgereasoning/internal/control"
	"edgereasoning/internal/data"
	"edgereasoning/internal/model"
	"edgereasoning/internal/stats"
)

// Generation is one sampled model response to one question.
type Generation struct {
	// OutputTokens = ThinkTokens + AnswerTokens (what the engine decodes).
	OutputTokens int
	ThinkTokens  int
	AnswerTokens int
	// Correct reports whether the extracted answer matches ground truth.
	Correct bool
	// Answer identifies the response for majority voting: 0 is the
	// correct answer; positive values identify wrong-answer clusters.
	Answer int
	// Truncated marks generations cut by a hard token limit.
	Truncated bool
}

// Twin samples generations that statistically match one model's measured
// behaviour on one benchmark.
type Twin struct {
	Spec  model.Spec
	Bench data.Benchmark
	seed  uint64
	// meanDifficulty centres the difficulty adjustment so bank-level
	// accuracy stays on calibration.
	meanDifficulty float64
	// difficultySlope couples per-question accuracy to difficulty.
	difficultySlope float64
}

// NewTwin builds a twin for a model on a benchmark bank. The bank is used
// only to centre the difficulty adjustment.
func NewTwin(spec model.Spec, bank *data.Bank, seed uint64) *Twin {
	md := 0.5
	if bank != nil && len(bank.Questions) > 0 {
		sum := 0.0
		for _, q := range bank.Questions {
			sum += q.Difficulty
		}
		md = sum / float64(len(bank.Questions))
	}
	bench := data.MMLURedux
	if bank != nil {
		bench = bank.Benchmark
	}
	return &Twin{
		Spec:            spec,
		Bench:           bench,
		seed:            seed,
		meanDifficulty:  md,
		difficultySlope: 0.55,
	}
}

// Behavior resolves the calibrated cell for a policy, or an error when
// neither the paper nor the interpolator covers the combination.
func (t *Twin) Behavior(pol control.Policy) (Behavior, error) {
	if err := pol.Validate(); err != nil {
		return Behavior{}, err
	}
	if beh, ok := Calibrated(t.Spec.ID, t.Bench, pol.Key()); ok {
		return beh, nil
	}
	// Arbitrary hard budgets interpolate along the model's budget curve.
	if pol.Kind == control.Hard {
		if beh, ok := InterpolateHardBudget(t.Spec.ID, t.Bench, pol.Budget); ok {
			return beh, nil
		}
	}
	return Behavior{}, fmt.Errorf("llm: no calibration for %s on %s with %s", t.Spec.ID, t.Bench, pol.Key())
}

// questionRNG derives the deterministic stream for one (question, config)
// pair; order of evaluation never changes results.
func (t *Twin) questionRNG(qIdx int, configKey string) *stats.RNG {
	name := fmt.Sprintf("llm/%s/%s/%s/q%d", t.Spec.ID, t.Bench, configKey, qIdx)
	return stats.NewRNG(t.seed, name)
}

// pCorrect samples the question's latent correctness probability for this
// model: the calibrated mean accuracy, tilted by question difficulty and
// dispersed by a Beta distribution (majority voting exploits exactly this
// heterogeneity).
func (t *Twin) pCorrect(q data.Question, beh Behavior, rng *stats.RNG) float64 {
	// The difficulty tilt shrinks near the accuracy extremes: a model at
	// 1% (Natural-Plan 1.5B) or 87% (MMLU 14B) has little headroom either
	// side, and an unscaled tilt plus clamping would bias the bank mean
	// away from calibration.
	acc := beh.Accuracy
	tilt := t.difficultySlope * 4 * acc * (1 - acc)
	mu := acc + tilt*(t.meanDifficulty-q.Difficulty)
	floor := 0.02
	if acc/2 < floor {
		floor = acc / 2
	}
	mu = stats.Clamp(mu, floor, 0.985)
	nu := beh.Dispersion
	if nu <= 0 {
		nu = 4.0
	}
	return rng.Beta(nu*mu, nu*(1-mu))
}

// sampleLength draws the output length for one question: lognormal around
// the calibrated mean (hard policies solve the censored-mean inversion so
// the post-truncation mean still matches the table), correlated with
// difficulty (harder questions think longer).
func (t *Twin) sampleLength(q data.Question, beh Behavior, pol control.Policy, rng *stats.RNG) (tokens int, truncated bool) {
	diffFactor := 0.75 + 0.5*(q.Difficulty-t.meanDifficulty+0.5)
	target := beh.MeanTokens * diffFactor
	if target < 1 {
		target = 1
	}
	cap := pol.Cap()
	if cap > 0 {
		raw := censoredLogNormalSample(rng, target, beh.Sigma, float64(cap))
		n := int(math.Round(raw))
		if n < 1 {
			n = 1
		}
		if n >= cap {
			return cap, true
		}
		return n, false
	}
	n := int(math.Round(rng.LogNormalMean(target, beh.Sigma)))
	if n < 1 {
		n = 1
	}
	return n, false
}

// Generate samples one response (the SF=1 path).
func (t *Twin) Generate(q data.Question, pol control.Policy) (Generation, error) {
	gens, err := t.GenerateVotes(q, pol, 1)
	if err != nil {
		return Generation{}, err
	}
	return gens[0], nil
}

// GenerateVotes samples k parallel responses to one question. All k share
// the question's latent correctness probability and distractor profile
// (they are the same model on the same input); token sampling and answer
// choice are independent across branches — the setup of §V-E.
func (t *Twin) GenerateVotes(q data.Question, pol control.Policy, k int) ([]Generation, error) {
	if k < 1 {
		return nil, fmt.Errorf("llm: vote count must be >= 1, got %d", k)
	}
	beh, err := t.Behavior(pol)
	if err != nil {
		return nil, err
	}
	rng := t.questionRNG(q.Index, pol.Key())
	p := t.pCorrect(q, beh, rng)
	// The model's modal answer on this question: with probability VoteCorr
	// a branch repeats it rather than sampling fresh. The modal answer
	// follows the same distribution as a fresh sample, so single-sample
	// accuracy is exactly p regardless of the correlation.
	modal := sampleAnswer(q, p, -1, rng)

	out := make([]Generation, k)
	for i := range out {
		tokens, truncated := t.sampleLength(q, beh, pol, rng)
		g := Generation{OutputTokens: tokens, Truncated: truncated}
		g.ThinkTokens, g.AnswerTokens = splitThinkAnswer(t.Spec, pol, tokens)
		if k > 1 && rng.Bernoulli(beh.VoteCorr) {
			g.Answer = modal
		} else {
			g.Answer = sampleAnswer(q, p, i, rng)
		}
		g.Correct = g.Answer == 0
		out[i] = g
	}
	return out, nil
}

// sampleAnswer draws the answer identity: 0 for correct, otherwise a
// wrong-answer cluster id. Multiple-choice questions spread wrong mass
// over the question's distractor profile; exact-match questions mostly
// produce unique wrong answers, colliding at the WrongAttractor rate.
func sampleAnswer(q data.Question, p float64, voteIdx int, rng *stats.RNG) int {
	if rng.Bernoulli(p) {
		return 0
	}
	if q.Choices > 1 && len(q.DistractorBias) > 0 {
		return 1 + rng.Categorical(q.DistractorBias)
	}
	// Exact match: wrong answers collide onto a shared attractor with
	// probability WrongAttractor, else are effectively unique.
	if rng.Bernoulli(q.WrongAttractor) {
		return 1
	}
	return 1000 + voteIdx // unique per branch: never forms a majority
}

// splitThinkAnswer decomposes an output into chain-of-thought and answer
// spans. Reasoning models spend nearly everything thinking; NR injects a
// stub thinking block; direct models do not think at all.
func splitThinkAnswer(spec model.Spec, pol control.Policy, tokens int) (think, answer int) {
	switch {
	case pol.Kind == control.Direct || spec.Class == model.NonReasoning:
		return 0, tokens
	case pol.Kind == control.NoReason:
		think = 10 // "<think> Okay, I think I have finished thinking. </think>"
		if think > tokens {
			think = tokens
		}
		return think, tokens - think
	default:
		answer = 24
		if answer > tokens/4 {
			answer = tokens / 4
		}
		if answer < 1 {
			answer = 1
		}
		return tokens - answer, answer
	}
}

// normCDF is the standard normal CDF.
func normCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// censoredMean returns E[min(X, c)] for X ~ LogNormal(mu, sigma).
func censoredMean(mu, sigma, c float64) float64 {
	lc := math.Log(c)
	m := math.Exp(mu + sigma*sigma/2)
	return m*normCDF((lc-mu-sigma*sigma)/sigma) + c*(1-normCDF((lc-mu)/sigma))
}

// censoredLogNormalSample draws min(X, cap) where X's parameters are
// solved (by bisection on mu) so that E[min(X, cap)] equals targetMean.
// When targetMean is at or above the cap the sample is the cap itself.
func censoredLogNormalSample(rng *stats.RNG, targetMean, sigma, cap float64) float64 {
	if targetMean >= cap*0.995 {
		return cap
	}
	mu := solveCensoredMu(targetMean, sigma, cap)
	x := math.Exp(mu + sigma*rng.NormFloat64())
	if x > cap {
		return cap
	}
	return x
}

// solveCensoredMu inverts censoredMean over mu via bisection.
func solveCensoredMu(target, sigma, c float64) float64 {
	lo := math.Log(target) - sigma*sigma/2 - 2 // censored mean < uncensored
	hi := math.Log(c) + 4*sigma                // pushes censored mean -> c
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if censoredMean(mid, sigma, c) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
