// Tiering property tests live in the external test package so they can
// drive engine.Serve with internal/session streams (session imports
// engine; an in-package file would be an import cycle).
package engine_test

import (
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/session"
)

// TestTieredServeTokensUnchanged pins the tentpole property: the host
// tier changes when blocks move, never what gets generated. The same
// session stream served on the same starved device cache with the tier
// on and off must produce token-identical results per request — only
// the timing (restore seconds, TTFT, wall time) may differ.
func TestTieredServeTokensUnchanged(t *testing.T) {
	reqs, err := session.Generate(session.AgentLoop(6, 3, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := model.MustLookup(model.DSR1Qwen1_5B)
	run := func(hostBlocks int) (engine.ServeMetrics, *engine.Engine) {
		t.Helper()
		e, err := engine.New(engine.Config{
			Spec: spec, Device: hw.JetsonAGXOrin64GB(), PrefixCache: true,
			DeviceBlocks: 192, HostTierBlocks: hostBlocks,
		})
		if err != nil {
			t.Fatal(err)
		}
		sm, err := e.Serve(reqs, 8, engine.FCFS)
		if err != nil {
			t.Fatal(err)
		}
		return sm, e
	}
	off, offEng := run(0)
	on, onEng := run(1024)

	if off.Served != len(reqs) || on.Served != len(reqs) {
		t.Fatalf("served %d (off) / %d (on) of %d", off.Served, on.Served, len(reqs))
	}
	type tokens struct{ prompt, output int }
	byID := func(sm engine.ServeMetrics) map[string]tokens {
		out := make(map[string]tokens, len(sm.Requests))
		for _, m := range sm.Requests {
			out[m.ID] = tokens{m.PromptTokens, m.OutputTokens}
		}
		return out
	}
	offTok, onTok := byID(off), byID(on)
	for id, want := range offTok {
		if got, ok := onTok[id]; !ok || got != want {
			t.Fatalf("request %s: tier-on tokens %+v, tier-off %+v", id, got, want)
		}
	}
	if off.TotalTokens != on.TotalTokens {
		t.Fatalf("total tokens diverged: off %d on %d", off.TotalTokens, on.TotalTokens)
	}

	// The starved cache must actually have exercised the tier: the on-run
	// demoted and promoted, the off-run could only evict.
	pmOn, pmOff := onEng.PrefixMetrics(), offEng.PrefixMetrics()
	if pmOn.Demotions == 0 || pmOn.Promotions == 0 {
		t.Fatalf("tier never cycled: %+v", pmOn)
	}
	if on.HostHits == 0 || on.RestoreSeconds <= 0 {
		t.Fatalf("no host hits surfaced in serve metrics: hits %d restore %.6f", on.HostHits, on.RestoreSeconds)
	}
	if pmOff.Demotions != 0 || off.RestoreSeconds != 0 {
		t.Fatalf("tier-off run reported tier activity: %+v restore %.6f", pmOff, off.RestoreSeconds)
	}
	// Restored state is reuse the off-run lost: the tier must not lower
	// the token-weighted hit rate.
	if on.PrefixHitRate() < off.PrefixHitRate() {
		t.Fatalf("host tier lowered hit rate: on %.4f off %.4f", on.PrefixHitRate(), off.PrefixHitRate())
	}
}
