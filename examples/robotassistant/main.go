// Robot assistant: the paper's motivating scenario (§I). A household
// robot faces tasks with wildly different latency budgets — "avoid that
// obstacle now!" (sub-second), "help me prepare dinner within 5 minutes"
// (tens of seconds of planning), "plan my weekly schedule" (minutes).
// The planner picks the optimal {model, token-control, scaling} recipe
// for each budget, demonstrating continuous operation across the
// accuracy-latency frontier instead of one fixed model.
package main

import (
	"fmt"
	"log"
	"time"

	"edgereasoning"
)

type task struct {
	request string
	budget  time.Duration
}

func main() {
	platform := edgereasoning.NewOrinPlatform()
	tasks := []task{
		{"Avoid that obstacle now!", 1 * time.Second},
		{"Can you help me prepare dinner within 5 minutes?", 20 * time.Second},
		{"Plan my weekly schedule.", 2 * time.Minute},
		{"Write a detailed study plan for my exams.", 10 * time.Minute},
	}

	fmt.Printf("Assistive robot on %s — per-task recipe selection\n\n", platform.DeviceName())
	for _, tk := range tasks {
		recipe, ok, err := platform.PlanRecipe(edgereasoning.MMLURedux, tk.budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%q (budget %s)\n", tk.request, tk.budget)
		if !ok {
			fmt.Println("  -> no configuration meets this budget; falling back to reflexes")
			continue
		}
		fmt.Printf("  -> %s\n", recipe.Label())
		fmt.Printf("     expected accuracy %.1f%%, latency %.2fs, %.0f J, $%.3f/1M tokens\n\n",
			recipe.Accuracy*100, recipe.Latency, recipe.EnergyPerQ, recipe.CostPerM)
	}

	// For deadline-critical execution the robot pairs a budget-aware model
	// (L1) with the latency model inversion: deadline -> token budget.
	fmt.Println("Deadline-to-token-budget mapping for the on-board models:")
	for _, id := range []edgereasoning.ModelID{
		edgereasoning.L1Max, edgereasoning.DSR1Llama8B, edgereasoning.DSR1Qwen14B,
	} {
		dep, err := platform.Deploy(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s", id)
		for _, d := range []time.Duration{2 * time.Second, 10 * time.Second, 60 * time.Second} {
			fmt.Printf("  %s->%4d tok", d, dep.MaxTokensWithin(128, d))
		}
		fmt.Println()
	}
}
