// Fleet-level telemetry: the dispatch loop and the fault machinery feed
// a shared ingress track (queue-wait and retry-backoff spans), a faults
// track (abort spans, crash instants, and the pre-rendered stall and
// throttle windows), and fleet-wide series (ingress depth, live pool
// size, breaker opens). Replica-side spans come from the engines, which
// record into per-replica tracks the fleet registers at construction.
// Everything here is nil-guarded off Config.Trace, so an untraced run
// pays one pointer compare per hook.
package fleet

import (
	"sort"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/telemetry"
)

// retryMark remembers one scheduled re-admission so the retry's queue
// span starts at the backoff end (not the original arrival) and carries
// its attempt number and the crash flow linking it to the abort.
type retryMark struct {
	at      float64
	attempt int
	flow    uint64
}

// fleetTracer owns the dispatch-side telemetry for one run. It is nil
// when tracing is off; every call site guards — a contract the traceoff
// analyzer enforces via the directive below.
//
//edgereasoning:tracer
type fleetTracer struct {
	trace   *telemetry.Trace
	ingress *telemetry.Track
	faults  *telemetry.Track
	qDepth  *telemetry.Series
	breaker *telemetry.Series
	lanes   telemetry.LaneAllocator // ingress lanes
	flanes  telemetry.LaneAllocator // fault-track lanes
	retries map[string]retryMark
	// pendingFlow carries the most recent abort span's flow ID to the
	// requeue decision that immediately follows it (crash processes each
	// abort fully before the next), so the retry's queue span can close
	// the flow arrow.
	pendingFlow uint64
}

// newFleetTracer registers the shared tracks ahead of the replica
// tracks, fixing the Perfetto layout: ingress, faults, then replicas in
// pool order.
func newFleetTracer(t *telemetry.Trace) *fleetTracer {
	if t == nil {
		return nil
	}
	return &fleetTracer{
		trace:   t,
		ingress: t.Track("ingress"),
		faults:  t.Track("faults"),
		qDepth:  t.GaugeSeries("ingress_queue_depth", ""),
		breaker: t.CounterFor("breaker_opens", ""),
		retries: make(map[string]retryMark),
	}
}

// sampleQueue records the ingress backlog on the dispatch clock.
func (ft *fleetTracer) sampleQueue(t float64, depth int) {
	ft.qDepth.Sample(t, float64(depth))
}

// dispatched records tr's shared-queue wait ending in a dispatch at t.
// First attempts wait from their arrival; retries from their scheduled
// re-admission instant, closing the crash flow arrow.
func (ft *fleetTracer) dispatched(tr engine.TimedRequest, t float64) {
	start := tr.Arrival
	var attempt int
	var flow uint64
	if m, ok := ft.retries[tr.ID]; ok {
		start, attempt, flow = m.at, m.attempt, m.flow
		delete(ft.retries, tr.ID)
	}
	ft.ingress.Record(telemetry.Span{
		ID: tr.ID, Kind: telemetry.KindQueue,
		Lane:  ft.lanes.Lane(start, t),
		Start: start, End: t,
		Session: tr.SessionID, Attempt: attempt, Flow: flow,
	})
}

// aborted records one crash-destroyed dispatch on the faults track and
// opens a flow for the retry that may follow. tr.Arrival here is the
// dispatch time (the loop restores the true arrival only on the requeue
// copy), so the span covers the attempt's time on the replica.
func (ft *fleetTracer) aborted(tr engine.TimedRequest, at, lost float64, replica string, attempt int) {
	flow := ft.trace.NextFlow()
	ft.pendingFlow = flow
	ft.faults.Record(telemetry.Span{
		ID: tr.ID, Kind: telemetry.KindAborted,
		Lane:  ft.flanes.Lane(tr.Arrival, at),
		Start: tr.Arrival, End: at,
		Cause: replica, Lost: lost, Attempt: attempt,
		Flow: flow, FlowStart: true,
	})
}

// retryScheduled records the backoff window between an abort and its
// re-admission (zero-length for a hedged retry) and marks the pending
// retry so its eventual queue span starts at re.
func (ft *fleetTracer) retryScheduled(tr engine.TimedRequest, at, re float64, attempt int) {
	ft.ingress.Record(telemetry.Span{
		ID: tr.ID, Kind: telemetry.KindRetryWait,
		Lane:  ft.lanes.Lane(at, re),
		Start: at, End: re, Attempt: attempt,
	})
	ft.retries[tr.ID] = retryMark{at: re, attempt: attempt, flow: ft.pendingFlow}
	ft.pendingFlow = 0
}

// crashed drops a zero-length crash marker on the faults track.
func (ft *fleetTracer) crashed(replica string, at float64) {
	ft.faults.Record(telemetry.Span{
		Kind: telemetry.KindCrash, Cause: replica,
		Lane:  ft.flanes.Lane(at, at),
		Start: at, End: at,
	})
}

// faultWindows pre-renders every compiled stall and throttle window onto
// the faults track — the injected schedule is known before dispatch
// starts, and seeing the windows alongside the abort spans is the point
// of the track. Windows are laid out in start order so the lane
// assignment is deterministic.
func (ft *fleetTracer) faultWindows(replicas []*replica) {
	var spans []telemetry.Span
	for _, r := range replicas {
		if r.tl == nil {
			continue
		}
		for _, w := range r.tl.stalls {
			spans = append(spans, telemetry.Span{
				Kind: telemetry.KindStall, Cause: r.cfg.Name,
				Start: w.From, End: w.To,
			})
		}
		for _, w := range r.tl.throttles {
			spans = append(spans, telemetry.Span{
				Kind: telemetry.KindThrottle, Cause: r.cfg.Name,
				Start: w.From, End: w.To, Factor: w.Factor,
			})
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		s.Lane = ft.flanes.Lane(s.Start, s.End)
		ft.faults.Record(s)
	}
}

// finalize samples the pool-size history and the per-replica run totals
// once the fold is complete. The live-replica series replays the scale
// events (initial size at t=0); the per-replica gauges land one sample
// at the wall clock, giving the Prometheus snapshot its final values.
func (ft *fleetTracer) finalize(out *Metrics, initial int) {
	live := ft.trace.GaugeSeries("live_replicas", "")
	live.Sample(0, float64(initial))
	for _, ev := range out.ScaleEvents {
		live.Sample(ev.Time, float64(ev.Live))
	}
	for _, rb := range out.PerReplica() {
		ft.trace.GaugeSeries("replica_served", rb.Name).Sample(out.WallTime, float64(rb.Served))
		ft.trace.GaugeSeries("replica_busy_seconds", rb.Name).Sample(out.WallTime, rb.BusySeconds)
		ft.trace.GaugeSeries("replica_crashes", rb.Name).Sample(out.WallTime, float64(rb.Crashes))
	}
}

// ReplicaBreakdown is one replica's run totals — the compact per-replica
// view the trace exporter and the CLI summary table share.
type ReplicaBreakdown struct {
	Name        string
	Served      int
	BusySeconds float64
	Crashes     int
}

// PerReplica summarizes each replica's share of the run, in pool order.
func (m Metrics) PerReplica() []ReplicaBreakdown {
	out := make([]ReplicaBreakdown, len(m.Replicas))
	for i, r := range m.Replicas {
		out[i] = ReplicaBreakdown{
			Name: r.Name, Served: r.Served,
			BusySeconds: r.BusyTime, Crashes: r.Crashes,
		}
	}
	return out
}
