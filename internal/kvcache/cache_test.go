package kvcache

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newTestCache(t *testing.T, blocks int) *Cache {
	t.Helper()
	c, err := New(Config{BlockSize: 16, NumBlocks: blocks, BytesPerToken: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllocateAndFree(t *testing.T) {
	c := newTestCache(t, 64)
	if err := c.Allocate("a", 100); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.UsedBlocks != 7 { // ceil(100/16)
		t.Errorf("used blocks = %d, want 7", st.UsedBlocks)
	}
	if err := c.Free("a"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.UsedBlocks != 0 || st.FreeBlocks != 64 {
		t.Errorf("after free: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocateDuplicate(t *testing.T) {
	c := newTestCache(t, 8)
	if err := c.Allocate("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Allocate("a", 1); err != ErrSequenceExists {
		t.Errorf("got %v, want ErrSequenceExists", err)
	}
}

func TestAllocateOutOfBlocks(t *testing.T) {
	c := newTestCache(t, 4)
	err := c.Allocate("big", 100) // needs 7 blocks
	if err != ErrOutOfBlocks {
		t.Fatalf("got %v, want ErrOutOfBlocks", err)
	}
	// Failed allocation must not leak.
	if st := c.Stats(); st.UsedBlocks != 0 {
		t.Errorf("leaked blocks after failed allocation: %+v", st)
	}
}

func TestAppendTokenBlockBoundary(t *testing.T) {
	c := newTestCache(t, 8)
	if err := c.Allocate("a", 16); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.UsedBlocks != 1 {
		t.Fatalf("want 1 block, got %d", st.UsedBlocks)
	}
	if err := c.AppendToken("a"); err != nil { // crosses into block 2
		t.Fatal(err)
	}
	if st := c.Stats(); st.UsedBlocks != 2 {
		t.Errorf("after boundary append: %d blocks, want 2", st.UsedBlocks)
	}
	n, err := c.Length("a")
	if err != nil || n != 17 {
		t.Errorf("length = %d/%v, want 17", n, err)
	}
}

func TestForkSharesBlocks(t *testing.T) {
	c := newTestCache(t, 32)
	if err := c.Allocate("parent", 64); err != nil { // 4 blocks
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := c.Fork("parent", fmt.Sprintf("child%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.UsedBlocks != 4 {
		t.Errorf("8-way fork must share all 4 blocks, used = %d", st.UsedBlocks)
	}
	if st.SharedBlocks != 4 {
		t.Errorf("shared blocks = %d, want 4", st.SharedBlocks)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCopyOnWriteOnSharedTail(t *testing.T) {
	c := newTestCache(t, 32)
	// 20 tokens: tail block holds 4 tokens (not at boundary).
	if err := c.Allocate("p", 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Fork("p", "c"); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().UsedBlocks // 2 shared blocks
	if err := c.AppendToken("c"); err != nil {
		t.Fatal(err)
	}
	after := c.Stats().UsedBlocks
	if after != before+1 {
		t.Errorf("CoW append must copy the shared tail: %d -> %d blocks", before, after)
	}
	// Parent unaffected.
	if n, _ := c.Length("p"); n != 20 {
		t.Errorf("parent length changed to %d", n)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestForkThenFreeParent(t *testing.T) {
	c := newTestCache(t, 32)
	if err := c.Allocate("p", 48); err != nil {
		t.Fatal(err)
	}
	if err := c.Fork("p", "c"); err != nil {
		t.Fatal(err)
	}
	if err := c.Free("p"); err != nil {
		t.Fatal(err)
	}
	// Child still owns the blocks.
	if st := c.Stats(); st.UsedBlocks != 3 {
		t.Errorf("blocks freed under the child: %+v", st)
	}
	if err := c.Free("c"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.UsedBlocks != 0 {
		t.Errorf("blocks leaked: %+v", st)
	}
}

func TestUnknownSequenceErrors(t *testing.T) {
	c := newTestCache(t, 8)
	if err := c.AppendToken("ghost"); err != ErrUnknownSequence {
		t.Error("AppendToken on ghost should fail")
	}
	if err := c.Free("ghost"); err != ErrUnknownSequence {
		t.Error("Free on ghost should fail")
	}
	if err := c.Fork("ghost", "x"); err != ErrUnknownSequence {
		t.Error("Fork from ghost should fail")
	}
	if _, err := c.Length("ghost"); err != ErrUnknownSequence {
		t.Error("Length on ghost should fail")
	}
}

func TestConfigForMemory(t *testing.T) {
	// 1 MiB budget, 16-token blocks, 1 KiB per token -> 64 blocks.
	cfg := ConfigForMemory(1<<20, 16, 1024)
	if cfg.NumBlocks != 64 {
		t.Errorf("NumBlocks = %d, want 64", cfg.NumBlocks)
	}
	if cfg.BlockSize != 16 {
		t.Errorf("BlockSize = %d, want 16", cfg.BlockSize)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{BlockSize: 0, NumBlocks: 1}).Validate(); err == nil {
		t.Error("zero BlockSize must fail")
	}
	if err := (Config{BlockSize: 16, NumBlocks: 0}).Validate(); err == nil {
		t.Error("zero NumBlocks must fail")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with invalid config must fail")
	}
}

func TestPeakUsedHighWaterMark(t *testing.T) {
	c := newTestCache(t, 16)
	_ = c.Allocate("a", 64) // 4 blocks
	_ = c.Allocate("b", 64) // 4 blocks
	_ = c.Free("a")
	st := c.Stats()
	if st.PeakUsed != 8 {
		t.Errorf("peak = %d, want 8", st.PeakUsed)
	}
	if st.UsedBlocks != 4 {
		t.Errorf("used = %d, want 4", st.UsedBlocks)
	}
}

// Property: a random workload of allocate/append/fork/free operations
// never violates the cache invariants, and freeing everything returns the
// cache to empty.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		c, err := New(Config{BlockSize: 16, NumBlocks: 128, BytesPerToken: 64})
		if err != nil {
			return false
		}
		live := []string{}
		next := 0
		for op := 0; op < 200; op++ {
			switch r.IntN(4) {
			case 0: // allocate
				id := fmt.Sprintf("s%d", next)
				next++
				if c.Allocate(id, 1+r.IntN(100)) == nil {
					live = append(live, id)
				}
			case 1: // append
				if len(live) > 0 {
					_ = c.AppendToken(live[r.IntN(len(live))])
				}
			case 2: // fork
				if len(live) > 0 {
					id := fmt.Sprintf("s%d", next)
					next++
					if c.Fork(live[r.IntN(len(live))], id) == nil {
						live = append(live, id)
					}
				}
			case 3: // free
				if len(live) > 0 {
					i := r.IntN(len(live))
					if c.Free(live[i]) != nil {
						return false
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
			if c.CheckInvariants() != nil {
				return false
			}
		}
		for _, id := range live {
			if c.Free(id) != nil {
				return false
			}
		}
		st := c.Stats()
		return st.UsedBlocks == 0 && st.FreeBlocks == st.TotalBlocks && c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
