// Fleet serving: the ROADMAP's "heavy traffic" north star in miniature.
// Four heterogeneous replicas — a full-power AGX Orin, power-capped
// siblings, FP16 and W4A16 weights — serve one open-loop stream of
// deadline-bearing interactive requests. The walkthrough compares the
// four routing policies on the same stream, then knocks out the fastest
// replica mid-run to show deadline-aware routing absorbing the failure.
package main

import (
	"fmt"
	"log"

	"edgereasoning/internal/fleet"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func main() {
	const (
		replicas = 4
		qps      = 2.0
		n        = 200
		seed     = 7
	)
	spec := model.MustLookup(model.Qwen25_7Bit)
	devices := fleet.DefaultDevices()
	configs := fleet.HeterogeneousReplicas(replicas, devices, spec)

	fmt.Println("Fleet: one stream, four heterogeneous replicas")
	for _, rc := range configs {
		fmt.Printf("  %-30s %s\n", rc.Name, rc.Spec.DisplayName)
	}

	profile := workload.InteractiveAssistant(qps, n)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 10
	reqs, err := workload.Generate(profile, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWorkload: %d interactive requests at %.1f QPS, 2-10s deadline slack\n\n", n, qps)

	fmt.Println("policy            p50(s)  p99(s)  hit-rate  energy(kJ)  imbalance")
	fmt.Println("------            ------  ------  --------  ----------  ---------")
	for _, p := range fleet.Policies() {
		m, err := fleet.Serve(fleet.Config{Replicas: configs, Policy: p}, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %6.2f  %6.2f  %7.1f%%  %10.2f  %9.2f\n",
			p, m.P50Latency, m.P99Latency, m.HitRate()*100, m.TotalEnergy/1e3, m.Imbalance)
	}

	// Failure drill: the full-power replica drains out a third of the
	// way through the stream. Deadline-aware routing sheds its traffic
	// onto the survivors; nothing is dropped, the SLA degrades instead.
	failAt := reqs[len(reqs)/3].Arrival
	drilled := fleet.HeterogeneousReplicas(replicas, devices, spec)
	drilled[0].FailAt = failAt
	m, err := fleet.Serve(fleet.Config{Replicas: drilled, Policy: fleet.DeadlineAware}, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFailure drill: %s drains at t=%.0fs (deadline-aware)\n", drilled[0].Name, failAt)
	for _, rm := range m.Replicas {
		fmt.Printf("  %-30s served %3d   busy %7.1fs\n", rm.Name, len(rm.Requests), rm.BusyTime)
	}
	fmt.Printf("  dropped %d, hit rate %.1f%%, p99 %.2fs\n", m.Dropped, m.HitRate()*100, m.P99Latency)

	// Cold-start drill: the same fleet, but every replica after the
	// first is still loading weights for its first minute.
	cold := fleet.HeterogeneousReplicas(replicas, devices, spec)
	for i := 1; i < len(cold); i++ {
		cold[i].WarmupDelay = 60
	}
	m, err = fleet.Serve(fleet.Config{Replicas: cold, Policy: fleet.DeadlineAware}, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCold-start drill: replicas 1-3 warm up at t=60s (deadline-aware)\n")
	fmt.Printf("  hit rate %.1f%%, p99 %.2fs — the lone warm replica eats the first minute\n",
		m.HitRate()*100, m.P99Latency)
}
