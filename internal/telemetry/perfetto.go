package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON array
// (Perfetto's legacy ingestion format). Timestamps and durations are
// microseconds; we keep them as float64 so simulated sub-microsecond
// boundaries survive the export exactly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const secToUS = 1e6

// WriteChromeTrace exports the trace as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each track becomes
// one process (ingress and faults first, then replicas in registration
// order); lanes become threads, so nesting and non-overlap render
// exactly as recorded. Series become counter tracks on their owning
// process, flows render as arrows from crash aborts to their retries.
// Events are sorted by timestamp (ties: longer spans first, so parents
// precede the children they enclose).
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	tracks := t.Tracks()
	pidOf := make(map[string]int, len(tracks))
	for i, tr := range tracks {
		pid := i + 1
		pidOf[tr.name] = pid
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": tr.name},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": i},
		})
		lanes := map[int]bool{}
		for _, s := range tr.Spans() {
			if !lanes[s.Lane] {
				lanes[s.Lane] = true
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: s.Lane + 1,
					Args: map[string]any{"name": fmt.Sprintf("lane %d", s.Lane)},
				})
			}
			events = append(events, spanEvents(s, pid)...)
		}
	}
	// Series render as counters on the process matching their label;
	// fleet-wide (unlabeled) series get a dedicated metrics process.
	metricsPid := len(tracks) + 1
	metricsUsed := false
	for _, s := range t.Series() {
		pid, ok := pidOf[s.Label]
		if !ok {
			pid = metricsPid
			metricsUsed = true
		}
		for _, p := range s.Points() {
			events = append(events, chromeEvent{
				Name: s.Name, Cat: s.Kind.String(), Ph: "C", Ts: p.T * secToUS, Pid: pid,
				Args: map[string]any{"value": p.V},
			})
		}
	}
	if metricsUsed {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: metricsPid,
			Args: map[string]any{"name": "fleet metrics"},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", Pid: metricsPid,
			Args: map[string]any{"sort_index": len(tracks)},
		})
	}
	sortEvents(events)
	return json.NewEncoder(w).Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// spanEvents renders one span: a complete ("X") slice — or an instant
// ("i") when zero-duration — plus its flow endpoints.
func spanEvents(s Span, pid int) []chromeEvent {
	name := s.Kind
	if s.Kind == KindRequest && s.ID != "" {
		name = s.ID
	}
	args := map[string]any{}
	if s.ID != "" {
		args["req"] = s.ID
	}
	if s.Session != "" {
		args["session"] = s.Session
	}
	if s.Cause != "" {
		args["cause"] = s.Cause
	}
	if s.Attempt > 0 {
		args["attempt"] = s.Attempt
	}
	if s.Tokens > 0 {
		args["tokens"] = s.Tokens
	}
	if s.Cached > 0 {
		args["cached_tokens"] = s.Cached
	}
	if s.Wait > 0 {
		args["ready_wait_s"] = s.Wait
	}
	if s.Lost > 0 {
		args["lost_s"] = s.Lost
	}
	if s.Factor > 1 {
		args["factor"] = s.Factor
	}
	if len(args) == 0 {
		args = nil
	}
	ev := chromeEvent{
		Name: name, Cat: s.Kind, Ph: "X",
		Ts: s.Start * secToUS, Dur: s.Dur() * secToUS,
		Pid: pid, Tid: s.Lane + 1, Args: args,
	}
	if s.End == s.Start {
		ev.Ph = "i"
		ev.Dur = 0
		ev.S = "t"
	}
	out := []chromeEvent{ev}
	if s.Flow != 0 {
		id := fmt.Sprintf("%d", s.Flow)
		if s.FlowStart {
			out = append(out, chromeEvent{
				Name: "retry", Cat: "retry", Ph: "s", ID: id,
				Ts: s.End * secToUS, Pid: pid, Tid: s.Lane + 1,
			})
		} else {
			out = append(out, chromeEvent{
				Name: "retry", Cat: "retry", Ph: "f", BP: "e", ID: id,
				Ts: s.Start * secToUS, Pid: pid, Tid: s.Lane + 1,
			})
		}
	}
	return out
}

// sortEvents orders metadata first, then by timestamp with longer spans
// first at ties (so an enclosing span precedes the children that start
// with it), with a full deterministic tiebreak.
func sortEvents(events []chromeEvent) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if am {
			if a.Pid != b.Pid {
				return a.Pid < b.Pid
			}
			if a.Tid != b.Tid {
				return a.Tid < b.Tid
			}
			return a.Name < b.Name
		}
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})
}
