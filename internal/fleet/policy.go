package fleet

import (
	"fmt"

	"edgereasoning/internal/engine"
)

// Policy selects how the fleet router assigns an arriving request to a
// replica. Routing is deterministic: given the same stream and fleet
// configuration, every policy produces the same assignment run-to-run.
type Policy int

const (
	// RoundRobin cycles through routable replicas in index order,
	// ignoring load and speed (the blind baseline).
	RoundRobin Policy = iota
	// LeastQueue routes to the replica with the fewest outstanding
	// requests, breaking ties by index.
	LeastQueue
	// LatencyWeighted spreads load proportionally to replica speed via
	// smooth weighted round-robin: a replica that serves the request
	// twice as fast receives twice the traffic.
	LatencyWeighted
	// DeadlineAware routes to the replica with the earliest estimated
	// completion for the request — the one most likely to meet its EDF
	// deadline — and schedules each replica's local queue EDF.
	DeadlineAware
	// SessionAffinity pins each session's turns to one replica — the one
	// holding the session's prefix KV — falling back least-queue (and
	// re-pinning) when the pinned replica is saturated, cold, or failed.
	// Sessionless requests route least-queue. Meaningful with
	// Config.PrefixCache and session-tagged streams; on a sessionless
	// stream it degrades to least-queue.
	SessionAffinity
)

// Policies lists the session-agnostic routing policies in stable order
// (the fleet driver's sweep). SessionAffinity is exercised separately by
// the sessions experiment, which provides the session-tagged streams it
// needs to differ from least-queue.
func Policies() []Policy {
	return []Policy{RoundRobin, LeastQueue, LatencyWeighted, DeadlineAware}
}

// String names the policy as used in tables and CLI flags.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastQueue:
		return "least-queue"
	case LatencyWeighted:
		return "latency-weighted"
	case DeadlineAware:
		return "deadline-aware"
	case SessionAffinity:
		return "session-affinity"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// LocalDiscipline is the per-replica queue discipline the policy implies:
// deadline-aware routing pairs with EDF locally, everything else FCFS.
func (p Policy) LocalDiscipline() engine.SchedPolicy {
	if p == DeadlineAware {
		return engine.EDF
	}
	return engine.FCFS
}

// ParsePolicy resolves a CLI spelling to a Policy. Accepted names are the
// String() forms plus the shorthands rr, lq, latency, deadline, and sa.
func ParsePolicy(s string) (Policy, error) {
	switch trimLower(s) {
	case "round-robin", "roundrobin", "rr":
		return RoundRobin, nil
	case "least-queue", "leastqueue", "lq":
		return LeastQueue, nil
	case "latency-weighted", "latency", "lw":
		return LatencyWeighted, nil
	case "deadline-aware", "deadline", "da":
		return DeadlineAware, nil
	case "session-affinity", "session", "sa":
		return SessionAffinity, nil
	}
	return 0, fmt.Errorf("fleet: unknown policy %q (have round-robin, least-queue, latency-weighted, deadline-aware, session-affinity)", s)
}
