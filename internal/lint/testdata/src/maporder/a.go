// Package maporder is the fixture for the maporder analyzer: emitting
// under a map range is rejected, collect-then-sort and slice ranges
// pass.
package maporder

import (
	"fmt"
	"os"
	"sort"
)

type table struct{}

func (t *table) AddRow(cells ...string) {}

func direct(m map[string]int) {
	for k, v := range m { // want "range over map reaches output sink fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func toWriter(m map[string]int) {
	for k := range m { // want "range over map reaches output sink fmt.Fprintln"
		fmt.Fprintln(os.Stdout, k)
	}
}

func viaTable(m map[string]int, t *table) {
	for k := range m { // want "range over map reaches output sink"
		t.AddRow(k)
	}
}

func nested(groups map[string][]int) {
	for name, xs := range groups { // want "range over map reaches output sink"
		for _, x := range xs {
			fmt.Println(name, x)
		}
	}
}

func collectThenSort(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func sliceRange(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

func sprintIsNotASink(m map[string]int) []string {
	var lines []string
	for k, v := range m {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(lines)
	return lines
}

func allowed(m map[string]int) {
	//edgereasoning:allow maporder -- identical line per entry, order-free
	for range m {
		fmt.Println("tick")
	}
}
