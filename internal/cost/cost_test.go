package cost

import (
	"math"
	"strings"
	"testing"
)

// §III-B single-batch profile: 195,624 tokens in 4,358 s using 0.0317 kWh
// must bill to $0.302 per million tokens ($0.024 energy + $0.278 hw).
func TestPaperSingleBatchCost(t *testing.T) {
	b := Bill(PaperRates(), 0.0317*3.6e6, 4358, 195624)
	if got := b.PerMillionTokens(); math.Abs(got-0.302) > 0.004 {
		t.Errorf("$/1M = %.4f, want 0.302", got)
	}
	if got := b.EnergyPerMillionTokens(); math.Abs(got-0.024) > 0.001 {
		t.Errorf("energy $/1M = %.4f, want 0.024", got)
	}
	if got := b.HardwarePerMillionTokens(); math.Abs(got-0.278) > 0.002 {
		t.Errorf("hardware $/1M = %.4f, want 0.278", got)
	}
}

// §III-B batch-30 profile: 398 s, 0.003 kWh → $0.027 per million tokens.
func TestPaperBatch30Cost(t *testing.T) {
	b := Bill(PaperRates(), 0.003*3.6e6, 398, 195624)
	if got := b.PerMillionTokens(); math.Abs(got-0.027) > 0.002 {
		t.Errorf("$/1M = %.4f, want 0.027", got)
	}
}

// Table III: the edge deployment undercuts o1-preview by >100x.
func TestEdgeVsCloudGap(t *testing.T) {
	edge := Bill(PaperRates(), 0.0317*3.6e6, 4358, 195624)
	cloud := PaperCloudPrices()[0]
	if cloud.Name != "openai-o1-preview" {
		t.Fatal("first cloud price must be o1-preview")
	}
	ratio := cloud.OutputPerMillion / edge.PerMillionTokens()
	if ratio < 100 {
		t.Errorf("cloud/edge ratio = %.0fx, paper reports ~200x", ratio)
	}
}

func TestCloudCost(t *testing.T) {
	p := CloudPrice{InputPerMillion: 15, OutputPerMillion: 60}
	got := CloudCost(p, 1_000_000, 500_000)
	if math.Abs(got-45) > 1e-9 {
		t.Errorf("cloud cost = %v, want 45", got)
	}
}

func TestZeroTokens(t *testing.T) {
	b := Bill(PaperRates(), 1000, 10, 0)
	if b.PerMillionTokens() != 0 || b.EnergyPerMillionTokens() != 0 || b.HardwarePerMillionTokens() != 0 {
		t.Error("zero tokens must price to 0 per-token")
	}
	if b.Total() <= 0 {
		t.Error("total cost is still positive")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Bill(PaperRates(), 0.0317*3.6e6, 4358, 195624)
	s := b.String()
	if !strings.Contains(s, "/1M tokens") {
		t.Errorf("unexpected format: %q", s)
	}
}

func TestBillComponentsAdditive(t *testing.T) {
	b := Bill(PaperRates(), 7.2e6, 7200, 1000)
	if math.Abs(b.Total()-(b.EnergyCost+b.HardwareCost)) > 1e-12 {
		t.Error("total must be the sum of components")
	}
	if math.Abs(b.EnergyKWh-2.0) > 1e-9 {
		t.Errorf("kWh conversion wrong: %v", b.EnergyKWh)
	}
	if math.Abs(b.WallHours-2.0) > 1e-9 {
		t.Errorf("hour conversion wrong: %v", b.WallHours)
	}
}
