// Package gpusim is the roofline execution-time simulator for the Jetson
// Orin GPU (and the Orin CPU complex). It walks the kernel sequence of a
// transformer forward pass, times each kernel as max(compute, memory) plus
// launch overhead, applies tensor-core tile padding (the source of the
// paper's 128-token stepped prefill latency, Fig 2), and reports the
// utilization signals the power model consumes.
package gpusim

import (
	"fmt"

	"edgereasoning/internal/hw"
)

// KernelKind classifies a simulated kernel.
type KernelKind int

const (
	// GEMM is a dense matmul (projections, FFN, LM head).
	GEMM KernelKind = iota
	// Attention is a fused attention kernel (QKᵀ softmax AV).
	Attention
	// Elementwise covers norms, activations, rotary embedding.
	Elementwise
	// Sampling is the per-sequence logits→token step.
	Sampling
)

// String names the kind.
func (k KernelKind) String() string {
	switch k {
	case GEMM:
		return "gemm"
	case Attention:
		return "attention"
	case Elementwise:
		return "elementwise"
	case Sampling:
		return "sampling"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kernel is one device-side launch with its arithmetic and memory demand.
type Kernel struct {
	Name  string
	Kind  KernelKind
	FLOPs float64
	Bytes float64 // DRAM traffic (read + write)
	// M, N, K describe GEMM geometry (M is the token/batch dimension that
	// tensor cores pad; N, K size the efficiency model). Non-GEMM kernels
	// leave them zero.
	M, N, K int
	// Repeat folds identical per-layer launches into one descriptor.
	Repeat int
}

// reps returns the launch count (Repeat defaulting to 1).
func (k Kernel) reps() int {
	if k.Repeat <= 0 {
		return 1
	}
	return k.Repeat
}

// TotalFLOPs returns FLOPs across all repeats.
func (k Kernel) TotalFLOPs() float64 { return k.FLOPs * float64(k.reps()) }

// TotalBytes returns DRAM traffic across all repeats.
func (k Kernel) TotalBytes() float64 { return k.Bytes * float64(k.reps()) }

// mfu returns the fraction of the device's effective matmul peak this
// kernel shape achieves. Large, well-tiled GEMMs approach 1; small M
// (short prompts) and narrow N/K (small models) lose efficiency, which is
// what makes short-prompt prefill memory/overhead-bound in Fig 2.
func mfu(d *hw.Device, m, n, k int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return 1
	}
	satM := float64(m) / (float64(m) + 96)
	satN := float64(n) / (float64(n) + 256)
	satK := float64(k) / (float64(k) + 256)
	return satM * satN * satK
}

// occupancy estimates the fraction of SMs a kernel keeps busy from its
// thread-block count (tiles of TileM×TileM over the output).
func occupancy(d *hw.Device, m, n int) float64 {
	if m <= 0 || n <= 0 {
		return 1
	}
	tile := d.TileM
	if tile < 1 {
		tile = 1
	}
	blocks := ((m + tile - 1) / tile) * ((n + tile - 1) / tile)
	occ := float64(blocks) / float64(d.SMCount)
	if occ > 1 {
		return 1
	}
	return occ
}
