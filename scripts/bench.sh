#!/usr/bin/env sh
# bench.sh — run the perf-trajectory benchmarks and maintain BENCH_serve.json.
#
#   scripts/bench.sh            # regression gate: fail if allocs/op regressed
#   scripts/bench.sh update     # re-measure, rewrite "current", append history
#
# Environment:
#   BENCHTIME   go test -benchtime value (default 2s; CI smoke uses 1x)
#
# The tracked targets are the serving hot loop (engine.Serve / engine.Run
# over a long-generation open-loop stream), the session-serving loop
# (multi-turn agentic stream, warm prefix cache vs cold), the tiered
# serving loop (the same agentic stream on a starved device cache with
# the host-DRAM KV tier demoting and promoting continuously), the
# KV-cache append paths (bulk handle-based vs per-token), the
# elastic-fleet serving path (fleet.Serve with autoscaling and shed
# admission), the chaos serving path (fleet.Serve under a generated
# fault schedule with retry re-admission, circuit breakers, and
# health-aware routing), the traced serving pair (the hot loop with the
# telemetry hooks compiled in: TracedServeOff gates the zero-overhead-
# when-off contract — its allocs/op must equal ServeHotLoop's — while
# TracedServeOn records the live-tracing cost for information), and
# the million-request streamed soak (engine.ServeSource over a lazy
# workload source; sim-events/s and live heap ride along as custom
# metrics). Only allocs/op is gated — it is deterministic across machines — while ns/op
# is recorded for the before/after table in the README. The
# pre-optimization reference in BENCH_serve.json's "pre_pr" section is
# preserved across updates, and each update also appends a per-PR
# "history" entry tagged with the commit the measurement was taken at,
# so the cross-PR perf trajectory stays machine-readable.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
MODE="${1:-check}"

run_benches() {
  go test -run '^$' -bench 'BenchmarkServeHotLoop$|BenchmarkRunHotLoop$|BenchmarkSessionServe$|BenchmarkTieredServe$|BenchmarkTracedServeOff$|BenchmarkTracedServeOn$' \
    -benchmem -benchtime "$BENCHTIME" -count 1 ./internal/engine
  # The soak streams 1e6 requests per op (~2s); one iteration is enough
  # signal and keeps the suite fast at any -benchtime.
  go test -run '^$' -bench 'BenchmarkSoakServe$' \
    -benchmem -benchtime 1x -count 1 ./internal/engine
  go test -run '^$' -bench 'BenchmarkKVAppend$|BenchmarkKVAppendToken$' \
    -benchmem -benchtime "$BENCHTIME" -count 1 ./internal/kvcache
  go test -run '^$' -bench 'BenchmarkAutoscaleServe$|BenchmarkChaosServe$' \
    -benchmem -benchtime "$BENCHTIME" -count 1 ./internal/fleet
}

case "$MODE" in
  update)
    # Tag the history entry with the tree actually measured: a dirty
    # working tree (modified OR untracked files) gets a "-dirty" suffix
    # so a pre-commit measurement can never overwrite the previous PR's
    # frozen clean-tree entry (benchcheck dedupes history by this tag).
    # Run update again after committing to record the stable point.
    COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
      COMMIT="${COMMIT}-dirty"
    fi
    DATE="$(date -u +%Y-%m-%d)"
    run_benches | tee /dev/stderr | go run ./cmd/benchcheck -baseline BENCH_serve.json -update \
      -commit "$COMMIT" -date "$DATE"
    ;;
  check)
    run_benches | tee /dev/stderr | go run ./cmd/benchcheck -baseline BENCH_serve.json -hotpaths .
    ;;
  *)
    echo "usage: scripts/bench.sh [check|update]" >&2
    exit 2
    ;;
esac
