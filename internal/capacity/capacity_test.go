package capacity

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// stepProbe models a service that meets the SLO strictly below knee and
// violates it at or above — the idealized monotone system the search
// assumes.
func stepProbe(knee float64, calls *int) Probe {
	return func(qps float64) (Sample, error) {
		if calls != nil {
			*calls++
		}
		return Sample{Value: qps / knee, Met: qps < knee}, nil
	}
}

func TestFindKneeConverges(t *testing.T) {
	for _, knee := range []float64{0.9, 3.7, 41, 513} {
		k, err := FindKnee(stepProbe(knee, nil), Options{MaxQPS: 1024, Resolution: 0.01})
		if err != nil {
			t.Fatalf("knee %.1f: %v", knee, err)
		}
		if k.QPS >= knee || k.ViolatedQPS < knee {
			t.Fatalf("knee %.1f: bracket [%.4f, %.4f] does not contain it", knee, k.QPS, k.ViolatedQPS)
		}
		if rel := (knee - k.QPS) / knee; rel > 0.05 {
			t.Fatalf("knee %.1f: located %.4f, off by %.1f%%", knee, k.QPS, rel*100)
		}
		if len(k.Probes) == 0 {
			t.Fatal("no probe trajectory recorded")
		}
	}
}

// TestSLONeverMet pins the floor edge: a service that violates the SLO
// even as offered load approaches zero (the single-request service time
// already busts the objective) must return the typed error, not hang or
// fabricate a knee.
func TestSLONeverMet(t *testing.T) {
	calls := 0
	probe := func(qps float64) (Sample, error) {
		calls++
		return Sample{Value: math.Inf(1), Met: false}, nil
	}
	_, err := FindKnee(probe, Options{})
	if !errors.Is(err, ErrSLONeverMet) {
		t.Fatalf("want ErrSLONeverMet, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("floor rejection should take exactly one probe, took %d", calls)
	}
	var se *SearchError
	if !errors.As(err, &se) || len(se.Probes) != 1 {
		t.Fatalf("error should carry the probe trajectory: %v", err)
	}
}

// TestSLOAlwaysMet pins the ceiling edge: a service that never saturates
// within the bracket must return the typed error instead of reporting
// MaxQPS as capacity.
func TestSLOAlwaysMet(t *testing.T) {
	calls := 0
	probe := func(qps float64) (Sample, error) {
		calls++
		return Sample{Value: 0.1, Met: true}, nil
	}
	_, err := FindKnee(probe, Options{MaxQPS: 64})
	if !errors.Is(err, ErrSLOAlwaysMet) {
		t.Fatalf("want ErrSLOAlwaysMet, got %v", err)
	}
	var se *SearchError
	if !errors.As(err, &se) || len(se.Probes) != calls {
		t.Fatalf("error should carry all %d probes: %v", calls, err)
	}
}

// TestProbeBudget verifies the search is bounded: MaxProbes caps total
// invocations even at an absurdly fine resolution, and the result is
// still a valid bracket.
func TestProbeBudget(t *testing.T) {
	calls := 0
	k, err := FindKnee(stepProbe(3.14159, &calls), Options{MaxProbes: 10, Resolution: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if calls > 10 {
		t.Fatalf("probe called %d times, budget 10", calls)
	}
	if !(k.QPS < 3.14159 && k.ViolatedQPS >= 3.14159) {
		t.Fatalf("budget-exhausted bracket [%.4f, %.4f] invalid", k.QPS, k.ViolatedQPS)
	}
}

func TestProbeErrorPropagates(t *testing.T) {
	boom := fmt.Errorf("engine exploded")
	probe := func(qps float64) (Sample, error) {
		if qps > 1 {
			return Sample{}, boom
		}
		return Sample{Met: true}, nil
	}
	_, err := FindKnee(probe, Options{MinQPS: 0.5})
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped probe error, got %v", err)
	}
}

func TestBadBracket(t *testing.T) {
	if _, err := FindKnee(stepProbe(1, nil), Options{MinQPS: 10, MaxQPS: 5}); err == nil {
		t.Fatal("inverted bracket should error")
	}
}
