package engine

import (
	"fmt"
	"math"
	"sort"

	"edgereasoning/internal/stats"
	"edgereasoning/internal/telemetry"
)

// TimedRequest is a request with an arrival time and an optional absolute
// deadline, for open-loop serving studies (QPS sweeps, SLA audits).
// Session-grade workloads additionally carry token identities and a
// session tag; plain open-loop streams leave them zero.
type TimedRequest struct {
	Request
	Arrival  float64 // seconds on the simulated clock
	Deadline float64 // absolute seconds; 0 means no deadline
	// SessionID groups the turns of one multi-turn conversation; routing
	// policies with session affinity key on it ("" means sessionless).
	SessionID string
	// PromptSyms are per-token content identities for the prompt (the
	// simulator's stand-in for token IDs). When the engine has a prefix
	// cache and len(PromptSyms) >= PromptTokens, admission matches the
	// longest cached prefix and prefills only the unmatched suffix.
	PromptSyms []uint64
	// OutputSyms identify the generated tokens (the workload generator
	// decides output lengths ahead of execution, so it knows them). They
	// let a finished sequence's full prompt+output history be retained
	// for the session's next turn.
	OutputSyms []uint64
}

// SchedPolicy selects the ready-queue discipline.
type SchedPolicy int

const (
	// FCFS admits in arrival order.
	FCFS SchedPolicy = iota
	// EDF admits earliest-deadline-first (deadline-less requests last).
	EDF
)

// String names the policy.
func (p SchedPolicy) String() string {
	if p == EDF {
		return "EDF"
	}
	return "FCFS"
}

// ServeMetrics extends BatchMetrics with latency percentiles, deadline
// accounting, and prefix-cache accounting over an open-loop run.
type ServeMetrics struct {
	BatchMetrics
	P50Latency     float64
	P95Latency     float64
	P99Latency     float64
	MeanLatency    float64
	DeadlinesMet   int
	DeadlinesTotal int
	// Served counts completed requests. It equals len(Latencies) and — in
	// full-metrics mode — len(Requests), but survives LeanMetrics.
	Served int
	// Events counts clock-advancing simulation events (prefills and
	// decode chunks) — the unit soak throughput is reported in.
	Events int
	// Latencies holds per-request (finish − arrival), in completion order.
	Latencies []float64
	// PrefixLookups counts admissions that consulted the prefix cache;
	// PrefixHits those that matched at least one block;
	// PrefixLookupTokens sums the prompt tokens of consulted admissions.
	// All stay zero without a prefix cache or without PromptSyms on the
	// requests.
	PrefixLookups      int
	PrefixHits         int
	PrefixLookupTokens int
	// SavedPrefillTokens is the prefill work the prefix cache avoided.
	SavedPrefillTokens int
	// HostHits counts admissions whose matched prefix included
	// host-resident blocks (promoted on acquire); RestoreSeconds is the
	// host-link transfer time those promotions charged. Both stay zero
	// without a host tier.
	HostHits       int
	RestoreSeconds float64
}

// PrefixHitRate is the token-weighted cache hit rate — saved prefill
// tokens over prompt tokens that consulted the cache (the convention
// vLLM and SGLang report) — or 0 when the cache was never consulted.
func (s ServeMetrics) PrefixHitRate() float64 {
	if s.PrefixLookupTokens == 0 {
		return 0
	}
	return float64(s.SavedPrefillTokens) / float64(s.PrefixLookupTokens)
}

// HitRate returns the fraction of deadline-bearing requests that met
// their deadline (1.0 when none carry deadlines).
func (s ServeMetrics) HitRate() float64 {
	if s.DeadlinesTotal == 0 {
		return 1
	}
	return float64(s.DeadlinesMet) / float64(s.DeadlinesTotal)
}

// ServeOpts tunes a streaming serve run.
type ServeOpts struct {
	// LeanMetrics drops per-request Metrics retention (ServeMetrics.
	// Requests stays nil) so a million-request soak holds O(active)
	// request state; latencies are still recorded for percentiles.
	LeanMetrics bool
	// SizeHint, when positive, pre-sizes the result slices for an
	// expected request count (the slice-API wrapper passes len(reqs)).
	SizeHint int
	// Faults injects replica-level fault behavior into this run: stall
	// windows (the device makes no progress), thermal-throttle windows
	// (decode time stretched by a factor), and crash-boundary prefix
	// wipes keyed by request ID. Nil serves undisturbed — the default
	// path is byte-identical with the field unset.
	Faults *FaultInjection
}

// FaultInjection is the per-run fault timeline a serving layer hands the
// engine: the engine applies the timing effects (stalls, throttling) and
// the crash-boundary cache wipes, while abort/retry decisions stay with
// the dispatcher that owns the request stream.
type FaultInjection struct {
	// Stalls are no-progress windows: a prefill or decode event that
	// would start inside [From, To) starts at To instead. Events are
	// atomic — one that starts before a window runs to completion.
	Stalls []StallWindow
	// Throttles stretch decode-chunk time by Factor for chunks starting
	// inside the window — a thermal cap. Energy is unchanged: the same
	// tokens cost the same joules, spread over more seconds.
	Throttles []ThrottleWindow
	// CrashWipes maps request IDs to host-tier survival: the engine
	// crash-resets its prefix index immediately before admitting that
	// request (the dispatcher marks the first request routed to the
	// replica after each crash restart, so the wipe lands between the
	// pre-crash survivors and the post-restart traffic). Fired markers
	// are deleted from the map.
	CrashWipes map[string]bool
}

// StallWindow is one no-progress interval [From, To).
type StallWindow struct{ From, To float64 }

// ThrottleWindow is one decode-slowdown interval [From, To) with its
// time multiplier (>= 1).
type ThrottleWindow struct {
	From, To float64
	Factor   float64
}

// stallEnd returns when work that would start at t can actually begin:
// past every stall window containing it (windows may chain or overlap).
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (f *FaultInjection) stallEnd(t float64) float64 {
	for changed := true; changed; {
		changed = false
		for _, w := range f.Stalls {
			if t >= w.From && t < w.To {
				t = w.To
				changed = true
			}
		}
	}
	return t
}

// throttleAt returns the decode-time multiplier at t (1 outside all
// windows; overlapping windows compound).
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (f *FaultInjection) throttleAt(t float64) float64 {
	m := 1.0
	for _, w := range f.Throttles {
		if t >= w.From && t < w.To && w.Factor > 1 {
			m *= w.Factor
		}
	}
	return m
}

// readyQueue is the admission queue: head-indexed so popping the front is
// O(1) without reslicing-away reusable capacity, compacted amortizedly so
// the dead prefix never exceeds the live region. Popped slots are zeroed
// so a drained queue pins no request payloads (PromptSyms histories are
// the bulk of a session stream's bytes).
type readyQueue struct {
	buf  []TimedRequest
	head int
}

func (q *readyQueue) len() int            { return len(q.buf) - q.head }
func (q *readyQueue) front() TimedRequest { return q.buf[q.head] }

//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (q *readyQueue) pushBack(tr TimedRequest) {
	q.reserve()
	q.buf = append(q.buf, tr)
}

// reserve seeds the backing array at a 16-slot floor on first use so a
// short backlog never pays the early append-growth doublings.
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (q *readyQueue) reserve() {
	if q.buf == nil {
		q.buf = make([]TimedRequest, 0, 16) //edgereasoning:allow hotpath -- one-time 16-slot floor, paid once per queue
	}
}

//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (q *readyQueue) popFront() {
	q.buf[q.head] = TimedRequest{}
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = TimedRequest{}
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
}

// edfKey orders deadlines with 0 (none) last.
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func edfKey(d float64) float64 {
	if d == 0 {
		return math.Inf(1)
	}
	return d
}

// insertEDF places tr at its earliest-deadline-first position, after any
// queued request with an equal key — element-for-element what a stable
// sort of the whole queue produces, without re-sorting the sorted part.
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (q *readyQueue) insertEDF(tr TimedRequest) {
	key := edfKey(tr.Deadline)
	q.reserve()
	q.buf = append(q.buf, tr)
	j := len(q.buf) - 1
	for j > q.head && edfKey(q.buf[j-1].Deadline) > key {
		q.buf[j] = q.buf[j-1]
		j--
	}
	q.buf[j] = tr
}

// Serve executes an open-loop workload: requests become visible at their
// arrival times, are admitted per the scheduling policy up to maxBatch
// concurrent decoders, and complete under the same continuous-batching
// loop as Run. The engine clock must be at or before the earliest
// arrival. It is a thin collector over ServeSource; results are
// element-identical to the historical slice implementation.
func (e *Engine) Serve(reqs []TimedRequest, maxBatch int, policy SchedPolicy) (ServeMetrics, error) {
	pending := make([]TimedRequest, len(reqs))
	copy(pending, reqs)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Arrival < pending[j].Arrival })
	return e.ServeSource(NewSliceSource(pending), maxBatch, policy, ServeOpts{SizeHint: len(reqs)})
}

// ServeSource is the streaming serve loop: requests are pulled from src
// (non-decreasing Arrival order) as simulated time reaches them, so live
// memory scales with the in-flight set — ready backlog plus maxBatch
// active decoders — not the stream length. Per-run bookkeeping (sequence
// arena, ready queue, decode scratch) is sized by maxBatch and recycled,
// keeping the steady-state loop allocation-free.
func (e *Engine) ServeSource(src Source, maxBatch int, policy SchedPolicy, opts ServeOpts) (ServeMetrics, error) {
	if maxBatch <= 0 {
		maxBatch = 1
	}
	in := NewPeekable(src)
	if tr, ok := in.Peek(); ok && e.clock > tr.Arrival {
		return ServeMetrics{}, fmt.Errorf("engine: clock %.3f already past first arrival %.3f", e.clock, tr.Arrival)
	}
	fx := opts.Faults
	// Tracing is resolved once per run; every producer site below guards
	// on tra so a nil tracer pays exactly one pointer compare and the
	// run's timing and metrics stay byte-identical with tracing off.
	tra := e.cfg.Trace
	var (
		kvGauge, actGauge, powGauge *telemetry.Series
		ttftHist, rateHist          *stats.Histogram
	)
	if tra != nil {
		kvGauge = tra.Gauge("kv_used_blocks")
		actGauge = tra.Gauge("active_requests")
		powGauge = tra.Gauge("power_watts")
		ttftHist = tra.Histogram("ttft_seconds", telemetry.TTFTBuckets)
		rateHist = tra.Histogram("decode_tokens_per_sec", telemetry.DecodeRateBuckets)
	}

	var ready readyQueue
	active := make([]*activeSeq, 0, maxBatch)
	// Arena of sequence bookkeeping: at most maxBatch sequences are ever
	// live, so maxBatch slots recycled through a free list cover any
	// stream length. Slot pointers are stable for the run's lifetime.
	arena := make([]activeSeq, maxBatch)
	freeSlots := make([]int, maxBatch)
	for i := range freeSlots {
		freeSlots[i] = maxBatch - 1 - i
	}
	var out ServeMetrics
	if !opts.LeanMetrics {
		out.Requests = make([]Metrics, 0, opts.SizeHint)
	}
	out.Latencies = make([]float64, 0, opts.SizeHint)

	blocksFor := func(tokens int) int {
		if tokens <= 0 {
			return 0
		}
		return (tokens + e.cfg.BlockSize - 1) / e.cfg.BlockSize
	}
	// futureGrowth reserves the active set's worst-case remaining block
	// demand, maintained incrementally (admit adds, append subtracts)
	// instead of rescanned per admission attempt.
	futureGrowth := 0
	ctxs := make([]int, 0, maxBatch) // scratch, reused every decode event
	promote := func() {
		for {
			tr, ok := in.Peek()
			if !ok || tr.Arrival > e.clock+1e-12 {
				break
			}
			in.Next()
			if policy == EDF {
				ready.insertEDF(tr)
			} else {
				ready.pushBack(tr)
			}
		}
	}
	finish := func(s *activeSeq) error {
		if e.prefix != nil && len(s.promptSyms) >= s.req.PromptTokens {
			// Retain the finished history (prompt + known output identities)
			// for the session's next turn instead of dropping the blocks.
			outSyms := s.outputSyms
			if len(outSyms) > s.req.OutputTokens {
				outSyms = outSyms[:s.req.OutputTokens]
			}
			if err := e.prefix.Release(s.handle, s.promptSyms[:s.req.PromptTokens], outSyms); err != nil {
				return err
			}
		} else if err := e.cache.FreeH(s.handle); err != nil {
			return err
		}
		lat := e.clock - s.arrival
		out.Latencies = append(out.Latencies, lat)
		out.Served++
		if s.deadline > 0 {
			out.DeadlinesTotal++
			if e.clock <= s.deadline {
				out.DeadlinesMet++
			}
		}
		if !opts.LeanMetrics {
			s.metrics.QueueTime = lat - s.metrics.TotalTime()
			out.Requests = append(out.Requests, s.metrics)
		}
		if tra != nil {
			tra.Record(telemetry.Span{ID: s.req.ID, Kind: telemetry.KindRequest,
				Lane: s.slot, Start: s.admitAt, End: e.clock, Session: s.session,
				Wait:   s.admitAt - s.arrival,
				Tokens: s.req.PromptTokens + s.req.OutputTokens,
				Cached: s.metrics.CachedPromptTokens})
			if s.metrics.DecodeTime > 0 {
				rateHist.Observe(float64(s.req.OutputTokens) / s.metrics.DecodeTime)
			}
		}
		out.TotalTokens += s.req.PromptTokens + s.req.OutputTokens
		s.promptSyms, s.outputSyms = nil, nil
		freeSlots = append(freeSlots, s.slot)
		return nil
	}

	start := e.clock
	for in.More() || ready.len() > 0 || len(active) > 0 {
		promote()
		// Idle: jump to the next arrival.
		if len(active) == 0 && ready.len() == 0 {
			tr, ok := in.Peek()
			if !ok {
				break
			}
			e.clock = tr.Arrival
			continue
		}
		// Admit from the ready queue.
		for ready.len() > 0 && len(active) < maxBatch {
			tr := ready.front()
			if tr.PromptTokens <= 0 {
				return out, fmt.Errorf("engine: request %q has no prompt", tr.ID)
			}
			// A crash boundary: the dispatcher marked this request as the
			// first one routed after the replica's crash restart, so the
			// prefix cache is wiped before admission even probes it.
			if fx != nil && e.prefix != nil && len(fx.CrashWipes) > 0 {
				if keep, ok := fx.CrashWipes[tr.ID]; ok {
					e.prefix.CrashReset(keep)
					delete(fx.CrashWipes, tr.ID)
				}
			}
			worstCase := blocksFor(tr.PromptTokens + tr.OutputTokens)
			// With a prefix cache, retained blocks are reclaimable
			// capacity. Probe first — touching the matched chain makes it
			// MRU, so eviction spares it — then evict cold prefixes until
			// the unmatched demand fits. Under extreme pressure eviction
			// can still trim the probed chain itself (growing the demand),
			// so re-probe and repeat until the demand fits or nothing is
			// left to evict; the final probe is exactly what Acquire finds.
			var syms []uint64
			probedBlocks := 0
			if e.prefix != nil {
				if len(tr.PromptSyms) >= tr.PromptTokens {
					syms = tr.PromptSyms[:tr.PromptTokens]
					probedBlocks = e.prefix.Probe(syms)
				}
				for worstCase-probedBlocks+futureGrowth > e.cache.FreeBlocks() {
					// Progress is measured in reclaimed capacity, not eviction
					// counts: EnsureFree stops on a zero-reclaim round (shared
					// leaves), and with a host tier demotions free blocks
					// without bumping Evictions at all.
					before := e.cache.FreeBlocks()
					e.prefix.EnsureFree(worstCase - probedBlocks + futureGrowth)
					if e.cache.FreeBlocks() == before {
						break
					}
					if syms != nil {
						probedBlocks = e.prefix.Probe(syms)
					}
				}
			}
			if worstCase-probedBlocks+futureGrowth > e.cache.FreeBlocks() {
				if len(active) > 0 {
					break
				}
				return out, fmt.Errorf("engine: request %q exceeds KV capacity even alone", tr.ID)
			}
			ready.popFront()
			matched := 0
			restore := 0.0
			if syms != nil {
				restoreBefore := e.prefix.Metrics().RestoreSeconds
				m, err := e.prefix.Acquire(tr.ID, syms)
				if err != nil {
					return out, err
				}
				matched = m
				out.PrefixLookups++
				out.PrefixLookupTokens += tr.PromptTokens
				if matched > 0 {
					out.PrefixHits++
					out.SavedPrefillTokens += matched
				}
				// A matched chain segment that had been demoted to host DRAM
				// was just promoted back; its transfer time lands on this
				// request's clock, ahead of prefill (part of TTFT).
				if restore = e.prefix.Metrics().RestoreSeconds - restoreBefore; restore > 0 {
					out.HostHits++
					out.RestoreSeconds += restore
				}
			} else if err := e.cache.AllocateReserve(tr.ID, tr.PromptTokens,
				tr.PromptTokens+tr.OutputTokens); err != nil {
				return out, err
			}
			slot := freeSlots[len(freeSlots)-1]
			freeSlots = freeSlots[:len(freeSlots)-1]
			s := &arena[slot]
			*s = activeSeq{req: tr.Request, ctx: tr.PromptTokens, remaining: tr.OutputTokens,
				arrival: tr.Arrival, deadline: tr.Deadline, slot: slot,
				admitAt: e.clock, session: tr.SessionID}
			if e.prefix != nil {
				s.promptSyms, s.outputSyms = tr.PromptSyms, tr.OutputSyms
			}
			h, err := e.cache.Lookup(tr.ID)
			if err != nil {
				return out, err
			}
			s.handle = h
			if err := e.cache.ReserveH(h, tr.PromptTokens+tr.OutputTokens); err != nil {
				return out, err
			}
			if syms != nil {
				// Acquire seeded only the matched blocks; append the
				// suffix the prefill below computes (the whole prompt on a
				// cold start).
				if err := e.cache.AppendTokensH(h, tr.PromptTokens-matched); err != nil {
					return out, err
				}
			}
			futureGrowth += worstCase - blocksFor(tr.PromptTokens)
			s.metrics = Metrics{ID: tr.ID, PromptTokens: tr.PromptTokens,
				OutputTokens: tr.OutputTokens, CachedPromptTokens: matched,
				RestoreTime: restore}
			if fx != nil {
				// A stalled device starts the restore+prefill at the
				// window's end; the wait lands in this request's TTFT.
				if st := fx.stallEnd(e.clock); st > e.clock {
					if tra != nil {
						tra.Record(telemetry.Span{ID: tr.ID, Kind: telemetry.KindStall,
							Lane: slot, Start: e.clock, End: st})
					}
					e.clock = st
				}
			}
			if tra != nil && restore > 0 {
				tra.Record(telemetry.Span{ID: tr.ID, Kind: telemetry.KindRestore,
					Lane: slot, Start: e.clock, End: e.clock + restore})
			}
			e.clock += restore
			res, err := e.prefill(tr.PromptTokens - matched)
			if err != nil {
				return out, err
			}
			if tra != nil {
				tra.Record(telemetry.Span{ID: tr.ID, Kind: telemetry.KindPrefill,
					Lane: slot, Start: e.clock, End: e.clock + res.Time,
					Tokens: tr.PromptTokens - matched, Cached: matched})
				ttftHist.Observe(e.clock + res.Time - tr.Arrival)
			}
			e.clock += res.Time
			out.Events++
			s.metrics.PrefillTime = res.Time
			s.metrics.PrefillEnergy = e.meter.Energy(res)
			out.TotalEnergy += s.metrics.PrefillEnergy
			active = append(active, s)
			if tra != nil {
				kvGauge.Sample(e.clock, float64(e.cache.UsedBlocks()))
				actGauge.Sample(e.clock, float64(len(active)))
			}
			promote()
		}
		if len(active) == 0 {
			continue
		}
		// Decode until the next event: completion, arrival, or the
		// admission grain.
		chunk := active[0].remaining
		for _, s := range active {
			if s.remaining < chunk {
				chunk = s.remaining
			}
		}
		if chunk <= 0 {
			var err error
			if active, err = reap(active, finish); err != nil {
				return out, err
			}
			continue
		}
		const admitGrain = 16
		if (in.More() || ready.len() > 0) && chunk > admitGrain {
			chunk = admitGrain
		}
		ctxs = ctxs[:0]
		for _, s := range active {
			ctxs = append(ctxs, s.ctx)
		}
		if fx != nil {
			// No decode progress inside a stall window.
			if st := fx.stallEnd(e.clock); st > e.clock {
				if tra != nil {
					for _, s := range active {
						tra.Record(telemetry.Span{ID: s.req.ID, Kind: telemetry.KindStall,
							Lane: s.slot, Start: e.clock, End: st})
					}
				}
				e.clock = st
			}
		}
		res := e.decodeChunk(ctxs, chunk)
		energy := e.meter.Energy(res)
		throttleF := 1.0
		if fx != nil {
			// Thermal throttle: the chunk's tokens take Factor times as
			// long (energy is computed from the unstretched result — the
			// same work, spread over more seconds at lower power).
			if f := fx.throttleAt(e.clock); f > 1 {
				res.Time *= f
				throttleF = f
			}
		}
		decodeFrom := e.clock
		e.clock += res.Time
		out.Events++
		out.TotalEnergy += energy
		perSeqEnergy := energy / float64(len(active))
		for _, s := range active {
			if err := e.cache.AppendTokensH(s.handle, chunk); err != nil {
				return out, err
			}
			futureGrowth -= blocksFor(s.ctx+chunk) - blocksFor(s.ctx)
			s.ctx += chunk
			s.remaining -= chunk
			s.metrics.DecodeTime += res.Time
			s.metrics.DecodeEnergy += perSeqEnergy
		}
		if tra != nil {
			cause := ""
			if throttleF > 1 {
				cause = "throttle"
			}
			for _, s := range active {
				tra.Record(telemetry.Span{ID: s.req.ID, Kind: telemetry.KindDecode,
					Lane: s.slot, Start: decodeFrom, End: e.clock,
					Tokens: chunk, Cause: cause, Factor: throttleF})
			}
			kvGauge.Sample(e.clock, float64(e.cache.UsedBlocks()))
			actGauge.Sample(e.clock, float64(len(active)))
			if res.Time > 0 {
				powGauge.Sample(e.clock, energy/res.Time)
			}
		}
		var err error
		if active, err = reap(active, finish); err != nil {
			return out, err
		}
	}
	out.WallTime = e.clock - start
	out.PeakKVBlocks = e.cache.PeakUsed()
	if len(out.Latencies) > 0 {
		out.MeanLatency = stats.Mean(out.Latencies)
		out.P50Latency, out.P95Latency, out.P99Latency = stats.Percentiles3(out.Latencies)
	}
	return out, nil
}

// CalibrationRates returns the engine's per-token prefill and decode
// rates at the reference geometry (256-token prompt, 128-step decode at
// context 256) without touching the clock or the cache — the same
// numbers a one-request probe run produces, at zero allocation. The
// fleet's router uses them to estimate service times for shed decisions.
func (e *Engine) CalibrationRates() (prefillPerTok, decodePerTok float64, err error) {
	res, err := e.prefill(256)
	if err != nil {
		return 0, 0, err
	}
	d := e.decodeChunk([]int{256}, 128)
	return res.Time / 256, d.Time / 128, nil
}
