// Package session generates multi-turn agentic workloads: N concurrent
// sessions, each an agent loop of turns with a think phase (long
// reasoning trace) and an act phase (short tool call / answer), where
// every request's prompt is the session's full growing history. The
// paper motivates edge deployment with exactly these autonomous loops
// (§I: robotics and autonomous systems), and related work on mobile edge
// general intelligence shows them dominated by heavily shared prefixes —
// the case the engine's cross-request prefix cache converts from
// prefill-bound back to decode-bound.
//
// Sessions emit the same event stream engine.Serve and fleet.Serve
// consume: engine.TimedRequest values, here carrying SessionID plus
// per-token content identities (PromptSyms/OutputSyms) so a prefix-aware
// engine can match a turn's history against retained KV blocks. Engines
// without a prefix cache run the identical stream cold, which is the
// baseline every comparison in the sessions experiment is made against.
package session

import (
	"fmt"
	"math"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/stats"
)

// Profile shapes a population of agentic sessions.
type Profile struct {
	// Sessions is the number of conversations.
	Sessions int
	// Turns is the number of agent-loop turns per session; each turn
	// emits a think request and an act request.
	Turns int
	// StartRate is the Poisson session-start rate in sessions/second.
	StartRate float64
	// SystemPromptTokens is the shared system prompt every session opens
	// with — identical content across sessions, so even first turns can
	// hit the prefix cache cross-session.
	SystemPromptTokens int
	// ObsMean/ObsSigma parameterize the lognormal per-turn observation
	// (user message / environment feedback) length.
	ObsMean  float64
	ObsSigma float64
	// ThinkMean/ThinkSigma parameterize the think-phase reasoning-trace
	// length (the long generation).
	ThinkMean  float64
	ThinkSigma float64
	// ActMean/ActSigma parameterize the act-phase output length (the
	// short tool call or final answer).
	ActMean  float64
	ActSigma float64
	// PhaseGapMean is the mean exponential gap between a turn's think
	// arrival and its act arrival (covers the think generation time —
	// the stream is open-loop, so gaps stand in for completion feedback).
	PhaseGapMean float64
	// TurnGapMean is the mean exponential gap between turns (environment
	// latency, user think time).
	TurnGapMean float64
	// Branch, when > 1, fans the think phase of branching turns out into
	// Branch parallel samples off the same history — test-time scaling
	// inside a session, exercising fork-style KV sharing. Branch 0's
	// trace continues the canonical history; the rest are dead ends.
	Branch int
	// BranchEvery selects branching turns (every k-th turn; 0 disables).
	BranchEvery int
	// ThinkSlack/ActSlack, when positive, give think/act requests a
	// deadline of arrival + slack seconds. Act phases are the
	// latency-critical ones in an agent loop.
	ThinkSlack float64
	ActSlack   float64
}

// Validate rejects unusable profiles before they reach a serving run.
func (p Profile) Validate() error {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	pos := func(v float64) bool { return v > 0 && finite(v) }
	nonneg := func(v float64) bool { return v >= 0 && finite(v) }
	switch {
	case p.Sessions <= 0:
		return fmt.Errorf("session: Sessions must be positive")
	case p.Turns <= 0:
		return fmt.Errorf("session: Turns must be positive")
	case !pos(p.StartRate):
		return fmt.Errorf("session: StartRate must be positive and finite")
	case p.SystemPromptTokens < 0:
		return fmt.Errorf("session: SystemPromptTokens must be non-negative")
	case !pos(p.ObsMean) || !pos(p.ThinkMean) || !pos(p.ActMean):
		return fmt.Errorf("session: length means must be positive and finite")
	case !nonneg(p.ObsSigma) || !nonneg(p.ThinkSigma) || !nonneg(p.ActSigma):
		return fmt.Errorf("session: length sigmas must be finite and non-negative")
	case !nonneg(p.PhaseGapMean) || !nonneg(p.TurnGapMean):
		return fmt.Errorf("session: gap means must be finite and non-negative")
	case p.Branch < 0 || p.BranchEvery < 0:
		return fmt.Errorf("session: Branch and BranchEvery must be non-negative")
	case !nonneg(p.ThinkSlack) || !nonneg(p.ActSlack):
		return fmt.Errorf("session: deadline slacks must be finite and non-negative")
	}
	return nil
}

// AgentLoop is the reference agentic profile: a 256-token system prompt,
// ~96-token observations, ~320-token reasoning traces, ~32-token
// actions, and branch-of-2 test-time scaling every other turn. Gaps are
// sized for a 1.5B-class on-device agent so consecutive turns usually
// find the previous turn's history already retained.
func AgentLoop(sessions, turns, branch int) Profile {
	return Profile{
		Sessions:           sessions,
		Turns:              turns,
		StartRate:          0.2,
		SystemPromptTokens: 256,
		ObsMean:            96, ObsSigma: 0.3,
		ThinkMean: 320, ThinkSigma: 0.4,
		ActMean: 32, ActSigma: 0.3,
		PhaseGapMean: 12,
		TurnGapMean:  10,
		Branch:       branch,
		BranchEvery:  2,
		ThinkSlack:   60,
		ActSlack:     8,
	}
}

// Generate synthesizes the merged session stream deterministically in
// (profile, seed), sorted by arrival. Every request carries SessionID
// and token identities; engines without a prefix cache simply ignore
// them. It is a thin collector over NewSource; callers that never need
// the whole slice at once should pull from the Source directly.
func Generate(p Profile, seed uint64) ([]engine.TimedRequest, error) {
	src, err := NewSource(p, seed)
	if err != nil {
		return nil, err
	}
	out := make([]engine.TimedRequest, 0, p.Sessions*p.Turns*2)
	for {
		tr, ok := src.Next()
		if !ok {
			return out, nil
		}
		out = append(out, tr)
	}
}

// generateSession emits one session's think/act requests against its
// growing history.
func generateSession(p Profile, si int, start float64, system []uint64, rng *stats.RNG) []engine.TimedRequest {
	sid := fmt.Sprintf("s%d", si)
	history := make([]uint64, 0, len(system)+p.Turns*int(p.ObsMean+p.ThinkMean+p.ActMean))
	history = append(history, system...)
	// A short session preamble (user identity, task statement) makes the
	// histories diverge after the shared system prompt.
	for i := 0; i < 8; i++ {
		history = append(history, symOf(rng))
	}
	clock := start
	reqs := make([]engine.TimedRequest, 0, p.Turns*2)

	appendSyms := func(n int) {
		for i := 0; i < n; i++ {
			history = append(history, symOf(rng))
		}
	}
	sampleLen := func(mean, sigma float64, floor int) int {
		n := int(rng.LogNormalMean(mean, sigma))
		if n < floor {
			n = floor
		}
		return n
	}
	emit := func(id string, output int, slack float64) engine.TimedRequest {
		tr := engine.TimedRequest{
			Request: engine.Request{
				ID:           id,
				PromptTokens: len(history),
				OutputTokens: output,
			},
			Arrival:    clock,
			SessionID:  sid,
			PromptSyms: history[:len(history):len(history)],
		}
		if slack > 0 {
			tr.Deadline = clock + slack
		}
		return tr
	}

	for turn := 0; turn < p.Turns; turn++ {
		// Observation arrives; the think phase reasons over the history.
		appendSyms(sampleLen(p.ObsMean, p.ObsSigma, 4))
		branches := 1
		if p.Branch > 1 && p.BranchEvery > 0 && (turn+1)%p.BranchEvery == 0 {
			branches = p.Branch
		}
		thinkLen := sampleLen(p.ThinkMean, p.ThinkSigma, 8)
		canonical := make([]uint64, thinkLen)
		for i := range canonical {
			canonical[i] = symOf(rng)
		}
		for b := 0; b < branches; b++ {
			id := fmt.Sprintf("%st%d", sid, turn)
			outSyms := canonical
			outLen := thinkLen
			if b > 0 {
				// Extra samples share the prompt but generate their own
				// traces, which are discarded (best-of-N dead ends).
				id = fmt.Sprintf("%sb%d", id, b)
				outLen = sampleLen(p.ThinkMean, p.ThinkSigma, 8)
				outSyms = make([]uint64, outLen)
				for i := range outSyms {
					outSyms[i] = symOf(rng)
				}
			}
			tr := emit(id, outLen, p.ThinkSlack)
			tr.OutputSyms = outSyms
			reqs = append(reqs, tr)
		}
		history = append(history, canonical...)
		clock += expSample(rng, p.PhaseGapMean)

		// Act phase: short output over the history including the trace.
		actLen := sampleLen(p.ActMean, p.ActSigma, 2)
		actSyms := make([]uint64, actLen)
		for i := range actSyms {
			actSyms[i] = symOf(rng)
		}
		tr := emit(fmt.Sprintf("%st%da", sid, turn), actLen, p.ActSlack)
		tr.OutputSyms = actSyms
		reqs = append(reqs, tr)
		history = append(history, actSyms...)
		clock += expSample(rng, p.TurnGapMean)
	}
	return reqs
}

// symOf draws one 64-bit token identity. Two independent streams collide
// with negligible probability, so distinct content gets distinct syms.
func symOf(rng *stats.RNG) uint64 {
	hi := uint64(rng.IntN(1 << 31))
	lo := uint64(rng.IntN(1 << 31))
	return hi<<33 | lo<<2 | 1
}

// expSample draws an exponential gap with the given mean (0 mean -> 0).
func expSample(rng *stats.RNG, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) * mean
}
