package fleet

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"edgereasoning/internal/engine"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
	"edgereasoning/internal/workload"
)

func timed(id string, arrival float64, prompt, output int, deadline float64) engine.TimedRequest {
	return engine.TimedRequest{
		Request:  engine.Request{ID: id, PromptTokens: prompt, OutputTokens: output},
		Arrival:  arrival,
		Deadline: deadline,
	}
}

// smallSpec keeps the per-test engines cheap.
func smallSpec() model.Spec { return model.MustLookup(model.Qwen25_1_5Bit) }

func homogeneousFleet(n int, policy Policy) Config {
	cfgs := make([]ReplicaConfig, n)
	for i := range cfgs {
		cfgs[i] = ReplicaConfig{Spec: smallSpec(), Device: hw.JetsonAGXOrin64GB()}
	}
	return Config{Replicas: cfgs, Policy: policy}
}

func burst(n int, gap float64, deadline float64) []engine.TimedRequest {
	reqs := make([]engine.TimedRequest, n)
	for i := range reqs {
		arrival := float64(i) * gap
		var d float64
		if deadline > 0 {
			d = arrival + deadline
		}
		reqs[i] = timed(fmt.Sprintf("q%d", i), arrival, 64, 40, d)
	}
	return reqs
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %v", p.String(), got)
		}
	}
	if _, err := ParsePolicy("chaos"); err == nil {
		t.Error("unknown policy must be rejected")
	}
}

func TestLocalDiscipline(t *testing.T) {
	if DeadlineAware.LocalDiscipline() != engine.EDF {
		t.Error("deadline-aware must schedule EDF locally")
	}
	if RoundRobin.LocalDiscipline() != engine.FCFS {
		t.Error("round-robin must schedule FCFS locally")
	}
}

func TestHeterogeneousReplicasCycleAndQuantize(t *testing.T) {
	devs := DefaultDevices()
	cfgs := HeterogeneousReplicas(4, devs, smallSpec())
	if len(cfgs) != 4 {
		t.Fatalf("got %d replicas", len(cfgs))
	}
	if cfgs[3].Device.Name != devs[0].Name {
		t.Errorf("device cycling broken: replica 3 on %s", cfgs[3].Device.Name)
	}
	if cfgs[0].Spec.IsQuantized() || !cfgs[1].Spec.IsQuantized() {
		t.Error("quantization must alternate FP16, W4, ...")
	}
}

func TestDeviceByName(t *testing.T) {
	for _, name := range DeviceNames() {
		d, err := DeviceByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: invalid descriptor: %v", name, err)
		}
	}
	if _, err := DeviceByName("tpu"); err == nil {
		t.Error("unknown device must be rejected")
	}
	capped, err := DeviceByName("orin-30w")
	if err != nil {
		t.Fatal(err)
	}
	if full, _ := DeviceByName("orin"); capped.PeakFP16FLOPS >= full.PeakFP16FLOPS {
		t.Error("power-capped Orin must derate compute")
	}
}

func TestServeEmptyStream(t *testing.T) {
	m, err := Serve(homogeneousFleet(2, RoundRobin), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Dropped != 0 {
		t.Errorf("empty stream served %d / dropped %d", m.Served, m.Dropped)
	}
	if m.HitRate() != 1 {
		t.Errorf("empty stream hit rate = %v, want 1", m.HitRate())
	}
}

func TestServeNoReplicas(t *testing.T) {
	if _, err := Serve(Config{}, burst(1, 1, 0)); err == nil {
		t.Error("empty fleet must be rejected")
	}
}

func TestServeNegativeArrivalRejected(t *testing.T) {
	if _, err := Serve(homogeneousFleet(1, RoundRobin), []engine.TimedRequest{timed("a", -1, 64, 10, 0)}); err == nil {
		t.Error("negative arrival must be rejected")
	}
}

func TestServeAllPoliciesCompleteEverything(t *testing.T) {
	reqs := burst(12, 2, 120)
	for _, p := range Policies() {
		m, err := Serve(homogeneousFleet(3, p), reqs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if m.Served != len(reqs) || m.Dropped != 0 {
			t.Errorf("%s: served %d dropped %d, want %d/0", p, m.Served, m.Dropped, len(reqs))
		}
		if !(m.P50Latency <= m.P95Latency && m.P95Latency <= m.P99Latency) {
			t.Errorf("%s: percentiles out of order: %v %v %v", p, m.P50Latency, m.P95Latency, m.P99Latency)
		}
		if m.TotalEnergy <= 0 || m.WallTime <= 0 {
			t.Errorf("%s: energy %.2f / wall %.2f not accounted", p, m.TotalEnergy, m.WallTime)
		}
		if hr := m.HitRate(); hr < 0 || hr > 1 {
			t.Errorf("%s: hit rate %v out of range", p, hr)
		}
		total := 0
		for _, rm := range m.Replicas {
			total += rm.Assigned
		}
		if total != len(reqs) {
			t.Errorf("%s: assignments sum to %d, want %d", p, total, len(reqs))
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	m, err := Serve(homogeneousFleet(2, RoundRobin), burst(10, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, rm := range m.Replicas {
		if rm.Assigned != 5 {
			t.Errorf("%s assigned %d, want 5", rm.Name, rm.Assigned)
		}
	}
	if m.Imbalance > 0.05 {
		t.Errorf("homogeneous round-robin imbalance = %.3f, want ~0", m.Imbalance)
	}
}

func TestLatencyWeightedFavorsFastReplica(t *testing.T) {
	fast, _ := DeviceByName("orin")
	slow, _ := DeviceByName("orin-15w")
	cfg := Config{
		Replicas: []ReplicaConfig{
			{Spec: smallSpec(), Device: fast},
			{Spec: smallSpec(), Device: slow},
		},
		Policy: LatencyWeighted,
	}
	m, err := Serve(cfg, burst(30, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas[0].Assigned <= m.Replicas[1].Assigned {
		t.Errorf("latency-weighted sent %d to fast vs %d to slow; fast must get more",
			m.Replicas[0].Assigned, m.Replicas[1].Assigned)
	}
}

func TestLeastQueueTracksBacklog(t *testing.T) {
	// A tight burst at capacity-limited replicas: least-queue must never
	// let one replica's outstanding count exceed the other's by > 1 at
	// dispatch time, which shows up as a near-even final split.
	m, err := Serve(homogeneousFleet(2, LeastQueue), burst(20, 0.1, 0))
	if err != nil {
		t.Fatal(err)
	}
	diff := m.Replicas[0].Assigned - m.Replicas[1].Assigned
	if diff < -1 || diff > 1 {
		t.Errorf("least-queue split %d/%d, want near-even", m.Replicas[0].Assigned, m.Replicas[1].Assigned)
	}
}

func TestWarmupKeepsReplicaColdThenRoutable(t *testing.T) {
	cfg := homogeneousFleet(2, RoundRobin)
	cfg.Replicas[1].WarmupDelay = 50
	reqs := append(burst(6, 2, 0), timed("late", 100, 64, 40, 0))
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replicas[0].Assigned != 6 {
		t.Errorf("cold replica stole traffic: warm got %d of 6 early requests", m.Replicas[0].Assigned)
	}
	if m.Replicas[1].Assigned != 1 {
		t.Errorf("warmed-up replica got %d requests, want the late one", m.Replicas[1].Assigned)
	}
}

func TestFailedReplicaDrains(t *testing.T) {
	cfg := homogeneousFleet(2, RoundRobin)
	cfg.Replicas[1].FailAt = 10
	reqs := append(burst(4, 1, 0), timed("after0", 20, 64, 40, 0), timed("after1", 22, 64, 40, 0))
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 || m.Served != len(reqs) {
		t.Fatalf("served %d dropped %d, want all served", m.Served, m.Dropped)
	}
	// Post-failure arrivals must all land on replica 0: 2 early + 2 late.
	if m.Replicas[0].Assigned != 4 || m.Replicas[1].Assigned != 2 {
		t.Errorf("assignments %d/%d, want 4/2 (failed replica drains, takes nothing new)",
			m.Replicas[0].Assigned, m.Replicas[1].Assigned)
	}
}

func TestAllReplicasDeadDropsWithDeadlineAccounting(t *testing.T) {
	cfg := homogeneousFleet(1, DeadlineAware)
	cfg.Replicas[0].FailAt = 0.5 // dead before anything arrives
	reqs := []engine.TimedRequest{
		timed("a", 1, 64, 40, 31),
		timed("b", 2, 64, 40, 32),
		timed("c", 3, 64, 40, 33),
	}
	m, err := Serve(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Dropped != 3 {
		t.Fatalf("served %d dropped %d, want 0/3", m.Served, m.Dropped)
	}
	if m.DeadlinesTotal != 3 || m.DeadlinesMet != 0 {
		t.Errorf("dropped deadline requests must count as missed: met %d / total %d", m.DeadlinesMet, m.DeadlinesTotal)
	}
	if m.HitRate() != 0 {
		t.Errorf("hit rate = %v, want 0", m.HitRate())
	}
}

func TestCapacityCausesHeadOfLineBlockingNotDrops(t *testing.T) {
	cfg := homogeneousFleet(1, RoundRobin)
	cfg.Replicas[0].Capacity = 1
	m, err := Serve(cfg, burst(10, 0.01, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 || m.Served != 10 {
		t.Errorf("capacity must delay, not drop: served %d dropped %d", m.Served, m.Dropped)
	}
	// With capacity 1 the replica serves strictly serially, so latencies
	// climb roughly linearly: the tail must include the queue wait
	// (p99 ≈ 10 service times against p50 ≈ 5.5).
	if m.P99Latency < 1.5*m.P50Latency {
		t.Errorf("head-of-line blocking should inflate tail latency: p50 %.3f p99 %.3f", m.P50Latency, m.P99Latency)
	}
}

func TestDeadlineAwareBeatsRoundRobinOnHeterogeneousFleet(t *testing.T) {
	profile := workload.InteractiveAssistant(10, 150)
	profile.DeadlineSlack = 2
	profile.DeadlineSlackMax = 10
	reqs, err := workload.Generate(profile, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Policy) Metrics {
		cfg := Config{Replicas: HeterogeneousReplicas(4, DefaultDevices(), smallSpec()), Policy: p}
		m, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		return m
	}
	rr := run(RoundRobin)
	dl := run(DeadlineAware)
	if dl.HitRate() < rr.HitRate() {
		t.Errorf("deadline-aware hit rate %.3f below round-robin %.3f", dl.HitRate(), rr.HitRate())
	}
	if dl.P99Latency > rr.P99Latency {
		t.Errorf("deadline-aware p99 %.2f above round-robin %.2f", dl.P99Latency, rr.P99Latency)
	}
	if rr.HitRate() >= 1 {
		t.Errorf("workload too easy: round-robin already hits 100%%, comparison is vacuous")
	}
}

func TestServeDeterministic(t *testing.T) {
	profile := workload.InteractiveAssistant(0.8, 60)
	profile.DeadlineSlack = 5
	profile.DeadlineSlackMax = 20
	reqs, err := workload.Generate(profile, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Policies() {
		cfg := Config{Replicas: HeterogeneousReplicas(3, DefaultDevices(), smallSpec()), Policy: p}
		a, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := Serve(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: repeated runs differ", p)
		}
	}
}

func TestImbalanceMath(t *testing.T) {
	if v := imbalance([]float64{5, 5, 5}); v != 0 {
		t.Errorf("even spread imbalance = %v, want 0", v)
	}
	if v := imbalance([]float64{0, 10}); math.Abs(v-1) > 1e-12 {
		t.Errorf("imbalance = %v, want 1 (std == mean)", v)
	}
	if v := imbalance(nil); v != 0 {
		t.Errorf("empty imbalance = %v, want 0", v)
	}
}
