// Package data synthesizes the benchmark question banks the paper
// evaluates on: MMLU-Redux (3,000 multiple-choice questions), full MMLU
// (15k), the three Natural-Plan tasks (exact-match planning), AIME2024,
// and MATH500. The real datasets are not shipped here; each bank is a
// statistical stand-in carrying what the simulation needs — per-question
// difficulty, prompt length, and (for multiple choice) a distractor
// -attractiveness profile that makes majority voting behave like it does
// on the real data (some questions have a seductive wrong answer that
// parallel scaling locks onto; see Fig 9).
package data

import (
	"fmt"

	"edgereasoning/internal/stats"
)

// Benchmark identifies a question bank.
type Benchmark string

// The paper's benchmarks.
const (
	MMLURedux           Benchmark = "mmlu-redux"
	MMLU                Benchmark = "mmlu"
	NaturalPlanCalendar Benchmark = "naturalplan-calendar"
	NaturalPlanMeeting  Benchmark = "naturalplan-meeting"
	NaturalPlanTrip     Benchmark = "naturalplan-trip"
	AIME2024            Benchmark = "aime2024"
	Math500             Benchmark = "math500"
)

// NaturalPlanTasks lists the three Natural-Plan sub-benchmarks.
func NaturalPlanTasks() []Benchmark {
	return []Benchmark{NaturalPlanCalendar, NaturalPlanMeeting, NaturalPlanTrip}
}

// Question is one synthetic benchmark item.
type Question struct {
	Index int
	// Difficulty in [0,1]; harder questions depress per-question accuracy
	// and lengthen reasoning.
	Difficulty float64
	// Choices is the option count for multiple choice, 0 for exact-match
	// (open answer) tasks.
	Choices int
	// PromptTokens is the tokenized prompt length fed to prefill.
	PromptTokens int
	// DistractorBias weights the wrong options (length Choices-1). A
	// dominant entry models a seductive wrong answer. Empty for
	// exact-match questions.
	DistractorBias []float64
	// WrongAttractor, for exact-match questions, is the probability that
	// two independent wrong samples produce the same wrong answer (answer
	// collision under voting).
	WrongAttractor float64
}

// Bank is a loaded benchmark.
type Bank struct {
	Benchmark Benchmark
	Questions []Question
}

// Size returns the question count.
func (b *Bank) Size() int { return len(b.Questions) }

// profile captures how a benchmark's questions are synthesized.
type profile struct {
	n            int
	choices      int
	diffA, diffB float64 // Beta shape of the difficulty distribution
	promptMean   float64
	promptSigma  float64
	dominantProb float64 // probability a question has a dominant distractor
	wrongAttract float64 // exact-match wrong-answer collision rate
}

var profiles = map[Benchmark]profile{
	// 3,000 four-choice questions spanning elementary to graduate level.
	MMLURedux: {n: 3000, choices: 4, diffA: 2.0, diffB: 2.4, promptMean: 180, promptSigma: 0.35, dominantProb: 0.22},
	// The full 15k-question MMLU (Table XII).
	MMLU: {n: 15000, choices: 4, diffA: 2.0, diffB: 2.4, promptMean: 180, promptSigma: 0.35, dominantProb: 0.22},
	// Natural-Plan: long constraint-laden prompts, exact-match answers,
	// brutally hard for small models (Tables XIII–XV).
	NaturalPlanCalendar: {n: 1000, choices: 0, diffA: 4.5, diffB: 1.6, promptMean: 750, promptSigma: 0.25, wrongAttract: 0.05},
	NaturalPlanMeeting:  {n: 1000, choices: 0, diffA: 4.2, diffB: 1.8, promptMean: 820, promptSigma: 0.25, wrongAttract: 0.05},
	NaturalPlanTrip:     {n: 1600, choices: 0, diffA: 4.6, diffB: 1.5, promptMean: 780, promptSigma: 0.25, wrongAttract: 0.05},
	// AIME 2024: 30 competition problems, very long reasoning chains.
	AIME2024: {n: 30, choices: 0, diffA: 5.0, diffB: 2.0, promptMean: 150, promptSigma: 0.20, wrongAttract: 0.08},
	// MATH500.
	Math500: {n: 500, choices: 0, diffA: 2.6, diffB: 2.6, promptMean: 140, promptSigma: 0.25, wrongAttract: 0.08},
}

// Load synthesizes a benchmark bank. Generation is deterministic in
// (benchmark, seed): every run sees the identical question population.
func Load(b Benchmark, seed uint64) (*Bank, error) {
	p, ok := profiles[b]
	if !ok {
		return nil, fmt.Errorf("data: unknown benchmark %q", b)
	}
	rng := stats.NewRNG(seed, "data/"+string(b))
	bank := &Bank{Benchmark: b, Questions: make([]Question, p.n)}
	for i := range bank.Questions {
		q := Question{
			Index:      i,
			Difficulty: rng.Beta(p.diffA, p.diffB),
			Choices:    p.choices,
		}
		q.PromptTokens = int(rng.LogNormalMean(p.promptMean, p.promptSigma))
		if q.PromptTokens < 16 {
			q.PromptTokens = 16
		}
		if p.choices > 1 {
			q.DistractorBias = make([]float64, p.choices-1)
			if rng.Bernoulli(p.dominantProb) {
				// One seductive wrong answer taking most wrong-mass.
				dom := rng.IntN(p.choices - 1)
				for j := range q.DistractorBias {
					q.DistractorBias[j] = 0.5 + rng.Float64()*0.5
				}
				q.DistractorBias[dom] = 3 + rng.Float64()*5
			} else {
				for j := range q.DistractorBias {
					q.DistractorBias[j] = 0.8 + rng.Float64()*0.4
				}
			}
		} else {
			q.WrongAttractor = p.wrongAttract
		}
		bank.Questions[i] = q
	}
	return bank, nil
}

// MustLoad is Load for known-good benchmarks.
func MustLoad(b Benchmark, seed uint64) *Bank {
	bank, err := Load(b, seed)
	if err != nil {
		panic(err)
	}
	return bank
}

// Subsample returns the first n questions (the paper uses 150- and
// 50-question subsets for Table II and Table VI).
func (b *Bank) Subsample(n int) *Bank {
	if n > len(b.Questions) {
		n = len(b.Questions)
	}
	return &Bank{Benchmark: b.Benchmark, Questions: b.Questions[:n]}
}

// All lists every benchmark.
func All() []Benchmark {
	return []Benchmark{MMLURedux, MMLU, NaturalPlanCalendar, NaturalPlanMeeting, NaturalPlanTrip, AIME2024, Math500}
}
