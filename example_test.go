package edgereasoning_test

import (
	"fmt"
	"time"

	"edgereasoning"
)

// Deploy a model and predict its latency with the fitted analytical
// model (Eqn 3).
func Example() {
	platform := edgereasoning.NewOrinPlatform()
	dep, err := platform.Deploy(edgereasoning.DSR1Qwen14B)
	if err != nil {
		panic(err)
	}
	// The inversion: how many tokens fit a 20-second deadline?
	budget := dep.MaxTokensWithin(180, 20*time.Second)
	fmt.Println(budget > 50 && budget < 200)
	// Output: true
}

// The planner answers Fig 1's question: the optimal recipe under a
// latency budget.
func ExamplePlatform_PlanRecipe() {
	platform := edgereasoning.NewOrinPlatform()
	recipe, ok, err := platform.PlanRecipe(edgereasoning.MMLURedux, 2*time.Second)
	if err != nil || !ok {
		panic(err)
	}
	// Tight budgets are served by small direct models (§V-A).
	fmt.Println(recipe.Latency <= 2.0)
	fmt.Println(recipe.Accuracy > 0.3)
	// Output:
	// true
	// true
}

// The catalog carries the paper's full model zoo.
func ExampleModels() {
	for _, m := range edgereasoning.Models() {
		if m.ID == edgereasoning.DSR1Llama8B {
			fmt.Printf("%s: %.1fB params, reasoning=%v\n",
				m.DisplayName, float64(m.Params)/1e9, m.Reasoning)
		}
	}
	// Output: DSR1-Llama-8B: 8.0B params, reasoning=true
}

// Edge economics at the paper's rates: the §III-B single-batch profile
// bills to $0.302 per million tokens.
func ExampleEdgeCost() {
	perMillion := edgereasoning.EdgeCost(0.0317*3.6e6, 4358, 195624)
	fmt.Printf("$%.2f\n", perMillion)
	// Output: $0.30
}

// Evaluating a model twin on a benchmark under token control.
func ExampleDeployment_Evaluate() {
	platform := edgereasoning.NewOrinPlatform()
	dep, err := platform.Deploy(edgereasoning.DSR1Qwen14B)
	if err != nil {
		panic(err)
	}
	res, err := dep.Evaluate(edgereasoning.MMLURedux, edgereasoning.NoReasoning(), 1)
	if err != nil {
		panic(err)
	}
	// Table XI: 14B NR scores 69.0% at ~180.7 tokens.
	fmt.Println(res.Accuracy > 0.66 && res.Accuracy < 0.72)
	// Output: true
}
