package fleet

import (
	"fmt"
	"strings"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

// DeviceByName resolves a CLI device spelling to a descriptor. Orin
// power-capped variants are derived with hw.ApplyPowerMode, so their
// compute, bandwidth, and power envelopes all derate together.
func DeviceByName(name string) (*hw.Device, error) {
	key := trimLower(name)
	switch key {
	case "orin", "orin-maxn", "agx-orin":
		return hw.JetsonAGXOrin64GB(), nil
	case "orin-50w", "orin-30w", "orin-15w":
		want := strings.ToUpper(strings.TrimPrefix(key, "orin-"))
		for _, m := range hw.OrinPowerModes() {
			if m.Name == want {
				return hw.ApplyPowerMode(hw.JetsonAGXOrin64GB(), m), nil
			}
		}
	case "orin-cpu", "cpu":
		return hw.OrinCortexA78AE(), nil
	case "h100":
		return hw.H100SXM(), nil
	}
	return nil, fmt.Errorf("fleet: unknown device %q (have %s)", name, strings.Join(DeviceNames(), ", "))
}

// DeviceNames lists the accepted -devices spellings in stable order.
func DeviceNames() []string {
	return []string{"orin", "orin-50w", "orin-30w", "orin-15w", "orin-cpu", "h100"}
}

// ParseDevices resolves a comma-separated device list ("" selects the
// default heterogeneous mix).
func ParseDevices(list string) ([]*hw.Device, error) {
	if strings.TrimSpace(list) == "" {
		return DefaultDevices(), nil
	}
	var out []*hw.Device
	for _, name := range strings.Split(list, ",") {
		d, err := DeviceByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// DefaultDevices is the default heterogeneous mix: a full-power AGX Orin
// flanked by 50W- and 30W-capped siblings — the spread a deployed fleet
// of thermally diverse cabinets actually shows.
func DefaultDevices() []*hw.Device {
	modes := hw.OrinPowerModes()
	var w50, w30 hw.PowerMode
	for _, m := range modes {
		switch m.Name {
		case "50W":
			w50 = m
		case "30W":
			w30 = m
		}
	}
	return []*hw.Device{
		hw.JetsonAGXOrin64GB(),
		hw.ApplyPowerMode(hw.JetsonAGXOrin64GB(), w50),
		hw.ApplyPowerMode(hw.JetsonAGXOrin64GB(), w30),
	}
}

// HeterogeneousReplicas builds n replica configs cycling through the
// device list and alternating FP16 / W4A16 weights, so both hardware and
// quantization heterogeneity are in play. An empty device list falls
// back to DefaultDevices.
func HeterogeneousReplicas(n int, devices []*hw.Device, base model.Spec) []ReplicaConfig {
	if len(devices) == 0 {
		devices = DefaultDevices()
	}
	out := make([]ReplicaConfig, n)
	for i := range out {
		spec := base
		if i%2 == 1 {
			spec = base.Quantized()
		}
		dev := devices[i%len(devices)]
		name := fmt.Sprintf("r%d-%s", i, dev.Name)
		if spec.IsQuantized() {
			name += "-w4"
		}
		out[i] = ReplicaConfig{Name: name, Spec: spec, Device: dev}
	}
	return out
}
