package engine

import (
	"math"
	"testing"

	"edgereasoning/internal/model"
)

func TestStallEndChainsWindows(t *testing.T) {
	fx := &FaultInjection{Stalls: []StallWindow{{From: 3, To: 6}, {From: 1, To: 3}, {From: 10, To: 11}}}
	cases := []struct{ in, want float64 }{
		{0, 0},   // before every window
		{1, 6},   // chains through the back-to-back windows
		{2.5, 6}, // mid-window
		{6, 6},   // window end is outside [From, To)
		{8, 8},   // gap between windows
		{10.5, 11},
	}
	for _, tc := range cases {
		if got := fx.stallEnd(tc.in); got != tc.want {
			t.Errorf("stallEnd(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestThrottleAtCompounds(t *testing.T) {
	fx := &FaultInjection{Throttles: []ThrottleWindow{
		{From: 0, To: 10, Factor: 2},
		{From: 5, To: 10, Factor: 3},
	}}
	if got := fx.throttleAt(1); got != 2 {
		t.Errorf("throttleAt(1) = %v, want 2", got)
	}
	if got := fx.throttleAt(7); got != 6 {
		t.Errorf("throttleAt(7) = %v, want 6 (overlap compounds)", got)
	}
	if got := fx.throttleAt(10); got != 1 {
		t.Errorf("throttleAt(10) = %v, want 1 (window end exclusive)", got)
	}
}

// TestServeFaultsOutsideRunAreInert pins the zero-perturbation contract:
// an injection whose windows never intersect the run leaves every metric
// identical to an undisturbed serve.
func TestServeFaultsOutsideRunAreInert(t *testing.T) {
	stream := []TimedRequest{
		timed("a", 0, 128, 60, 0),
		timed("b", 0.5, 96, 40, 0),
		timed("c", 2, 64, 80, 0),
	}
	base := newOrinEngine(t, model.DSR1Qwen1_5B)
	want, err := base.Serve(stream, 2, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	faulted := newOrinEngine(t, model.DSR1Qwen1_5B)
	fx := &FaultInjection{
		Stalls:    []StallWindow{{From: 1e9, To: 1e9 + 5}},
		Throttles: []ThrottleWindow{{From: 1e9, To: 1e9 + 5, Factor: 4}},
	}
	src := NewSliceSource(stream)
	got, err := faulted.ServeSource(src, 2, FCFS, ServeOpts{Faults: fx})
	if err != nil {
		t.Fatal(err)
	}
	if base.Clock() != faulted.Clock() || got.TotalEnergy != want.TotalEnergy ||
		got.MeanLatency != want.MeanLatency || got.Events != want.Events {
		t.Fatalf("out-of-run faults perturbed the serve:\n got %+v\nwant %+v", got, want)
	}
}

// TestServeStallDelaysStart pins stall semantics: work that would start
// inside the window starts at its end, and the wait lands in the
// stalled request's latency.
func TestServeStallDelaysStart(t *testing.T) {
	stream := []TimedRequest{timed("a", 0, 64, 50, 0)}
	base := newOrinEngine(t, model.DSR1Qwen1_5B)
	want, err := base.Serve(stream, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	const stall = 5.0
	faulted := newOrinEngine(t, model.DSR1Qwen1_5B)
	fx := &FaultInjection{Stalls: []StallWindow{{From: 0, To: stall}}}
	got, err := faulted.ServeSource(NewSliceSource(stream), 1, FCFS, ServeOpts{Faults: fx})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Latencies[0]-(want.Latencies[0]+stall)) > 1e-9 {
		t.Errorf("stalled latency %.6f, want %.6f (+%v s window)", got.Latencies[0], want.Latencies[0]+stall, stall)
	}
	if got.TotalEnergy != want.TotalEnergy {
		t.Errorf("stall changed energy: %v vs %v (no work happens in a stall)", got.TotalEnergy, want.TotalEnergy)
	}
}

// TestServeThrottleStretchesDecodeNotEnergy pins throttle semantics: a
// factor-2 window covering the run doubles decode time while prefill
// time and total energy stay exactly as measured unthrottled.
func TestServeThrottleStretchesDecodeNotEnergy(t *testing.T) {
	stream := []TimedRequest{timed("a", 0, 64, 80, 0)}
	base := newOrinEngine(t, model.DSR1Qwen1_5B)
	want, err := base.Serve(stream, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	faulted := newOrinEngine(t, model.DSR1Qwen1_5B)
	fx := &FaultInjection{Throttles: []ThrottleWindow{{From: 0, To: 1e9, Factor: 2}}}
	got, err := faulted.ServeSource(NewSliceSource(stream), 1, FCFS, ServeOpts{Faults: fx})
	if err != nil {
		t.Fatal(err)
	}
	g, w := got.Requests[0], want.Requests[0]
	if math.Abs(g.DecodeTime-2*w.DecodeTime) > 1e-9 {
		t.Errorf("throttled decode %.6f, want %.6f (2x)", g.DecodeTime, 2*w.DecodeTime)
	}
	if g.PrefillTime != w.PrefillTime {
		t.Errorf("throttle touched prefill: %.6f vs %.6f", g.PrefillTime, w.PrefillTime)
	}
	if got.TotalEnergy != want.TotalEnergy {
		t.Errorf("throttled energy %.6f, want %.6f (same work, longer window)", got.TotalEnergy, want.TotalEnergy)
	}
}

// TestServeCrashWipeFiresBeforeMarkedRequest pins the crash-boundary
// contract: the prefix cache is wiped immediately before the marked
// request is admitted, so pre-crash history gives it no hit, and the
// fired marker is consumed.
func TestServeCrashWipeFiresBeforeMarkedRequest(t *testing.T) {
	e := newPrefixEngine(t, model.DSR1Qwen1_5B)
	history := make([]uint64, 256)
	for i := range history {
		history[i] = uint64(1000 + i)
	}
	warm, err := e.Serve([]TimedRequest{sessTimed("t1", 0, history, 128, 64)}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PrefixLookups != 1 {
		t.Fatalf("warm-up consulted the cache %d times, want 1", warm.PrefixLookups)
	}

	// Same prefix again, but marked as the replica's post-crash boundary.
	next := sessTimed("t2", e.Clock()+1, history, 192, 64)
	fx := &FaultInjection{CrashWipes: map[string]bool{"t2": false}}
	m, err := e.ServeSource(NewSliceSource([]TimedRequest{next}), 1, FCFS, ServeOpts{Faults: fx})
	if err != nil {
		t.Fatal(err)
	}
	if m.SavedPrefillTokens != 0 {
		t.Errorf("marked request saved %d prefill tokens, want 0 (cache wiped first)", m.SavedPrefillTokens)
	}
	if pm := e.PrefixMetrics(); pm.CrashWipes != 1 || pm.CrashDropped == 0 {
		t.Errorf("prefix metrics wipes %d dropped %d, want 1 wipe with drops", pm.CrashWipes, pm.CrashDropped)
	}
	if len(fx.CrashWipes) != 0 {
		t.Errorf("fired wipe marker not consumed: %v", fx.CrashWipes)
	}

	// The wiped cache rebuilds: the next turn over the same history hits.
	again, err := e.Serve([]TimedRequest{sessTimed("t3", e.Clock()+1, history, 192, 32)}, 1, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if again.SavedPrefillTokens == 0 {
		t.Error("post-crash traffic must rebuild the cache and hit again")
	}
}
