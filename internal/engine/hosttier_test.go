package engine

import (
	"math"
	"testing"

	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func historyAt(base uint64, n int) []uint64 {
	h := make([]uint64, n)
	for i := range h {
		h[i] = base + uint64(i)
	}
	return h
}

func TestServeHostTierRestoreAccounting(t *testing.T) {
	e, err := New(Config{
		Spec: model.MustLookup(model.DSR1Qwen1_5B), Device: hw.JetsonAGXOrin64GB(),
		PrefixCache: true, DeviceBlocks: 64, HostTierBlocks: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	histA := historyAt(1<<40, 2048)
	histB := historyAt(1<<41, 2048)

	// Session A's first turn retains 48 of the 64 device blocks.
	if _, err := e.Serve([]TimedRequest{sessTimed("a0", 0, histA, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	// Session B's first turn needs 48 blocks with only 16 free: admission
	// demotes A's cold chain to the host tier instead of destroying it.
	if _, err := e.Serve([]TimedRequest{sessTimed("b0", 1000, histB, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	if pm := e.PrefixMetrics(); pm.Demotions == 0 || pm.HostRetained == 0 {
		t.Fatalf("pressure did not demote: %+v", pm)
	}

	// Session A's second turn walks onto its host-resident history: the
	// promotion is a prefix hit that charges restore time into TTFT.
	sm, err := e.Serve([]TimedRequest{sessTimed("a1", 2000, histA, 512+256+128, 64)}, 4, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if sm.PrefixHits != 1 || sm.HostHits != 1 {
		t.Fatalf("prefix/host hits = %d/%d, want 1/1", sm.PrefixHits, sm.HostHits)
	}
	m := sm.Requests[0]
	if m.CachedPromptTokens == 0 {
		t.Fatal("warm turn cached nothing")
	}
	if m.RestoreTime <= 0 {
		t.Fatalf("restore time %.9f, want > 0", m.RestoreTime)
	}
	if sm.RestoreSeconds != m.RestoreTime {
		t.Fatalf("run restore %.9f != request restore %.9f", sm.RestoreSeconds, m.RestoreTime)
	}
	if got, want := m.TTFT(), m.RestoreTime+m.PrefillTime; got != want {
		t.Fatalf("TTFT %.9f, want restore+prefill %.9f", got, want)
	}
	// The restore advanced the clock, so latency decomposes exactly into
	// queue + restore + prefill + decode.
	lat := sm.Latencies[0]
	if diff := math.Abs(lat - (m.QueueTime + m.TotalTime())); diff > 1e-9 {
		t.Fatalf("latency %.9f does not decompose (queue %.9f + total %.9f)", lat, m.QueueTime, m.TotalTime())
	}
	if m.QueueTime < 0 {
		t.Fatalf("negative queue time %.9f (restore not folded into TotalTime?)", m.QueueTime)
	}
	if pm := e.PrefixMetrics(); pm.Promotions == 0 || pm.HostHits != 1 {
		t.Fatalf("promotion not recorded: %+v", pm)
	}
}

func TestHostTierRequiresPrefixCache(t *testing.T) {
	_, err := New(Config{
		Spec: model.MustLookup(model.DSR1Qwen1_5B), Device: hw.JetsonAGXOrin64GB(),
		HostTierBlocks: 128,
	})
	if err == nil {
		t.Fatal("HostTierBlocks without PrefixCache did not fail")
	}
}

func TestResetRebuildsTier(t *testing.T) {
	e, err := New(Config{
		Spec: model.MustLookup(model.DSR1Qwen1_5B), Device: hw.JetsonAGXOrin64GB(),
		PrefixCache: true, DeviceBlocks: 64, HostTierBlocks: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	histA := historyAt(1<<40, 2048)
	histB := historyAt(1<<41, 2048)
	if _, err := e.Serve([]TimedRequest{sessTimed("a0", 0, histA, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve([]TimedRequest{sessTimed("b0", 1000, histB, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if pm := e.PrefixMetrics(); pm.Demotions != 0 || pm.HostRetained != 0 {
		t.Fatalf("reset kept tier state: %+v", pm)
	}
	// The tier is re-attached, not dropped: pressure after reset demotes
	// again instead of evicting.
	if _, err := e.Serve([]TimedRequest{sessTimed("a0", 3000, histA, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Serve([]TimedRequest{sessTimed("b0", 4000, histB, 512, 256)}, 4, FCFS); err != nil {
		t.Fatal(err)
	}
	if pm := e.PrefixMetrics(); pm.Demotions == 0 {
		t.Fatalf("tier lost across reset: %+v", pm)
	}
}
