// Command profiler is the simclock negative fixture: packages under a
// cmd/ path segment report host wall time as driver UX and are exempt.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
