package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("edgereasoning/internal/engine")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks the module's packages using only the
// standard library: module-local imports resolve against the module
// root, everything else goes through the "source" importer (which
// type-checks the standard library from GOROOT source, so the loader
// works without pre-built export data and without network access).
//
// Test files are not loaded — the analyzers exempt them by contract
// (goldens and the race detector already police test code), and leaving
// them out keeps the type-checking graph free of external test
// packages.
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory (or fixture src root)
	module  string // module path; "" in fixture mode (paths map directly under root)
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at dir. The module
// path is read from go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root %s: %w", abs, err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
	}
	return newLoader(abs, module), nil
}

// NewFixtureLoader builds a loader for an analysistest-style fixture
// tree: import paths map directly to directories under srcRoot, with
// the standard library as fallback.
func NewFixtureLoader(srcRoot string) *Loader {
	return newLoader(srcRoot, "")
}

func newLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to its directory under the loader's root,
// or "" when the path is not module-local.
func (l *Loader) dirFor(path string) string {
	if l.module != "" {
		if path == l.module {
			return l.root
		}
		rel, ok := strings.CutPrefix(path, l.module+"/")
		if !ok {
			return ""
		}
		return filepath.Join(l.root, filepath.FromSlash(rel))
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// Import implements types.Importer: module-local paths load (and cache)
// through the loader; everything else falls through to the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the given import path
// (module-local), memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %q is not inside module %q", path, l.module)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir loads the package in the module-root-relative directory
// ("internal/engine", or "." for the root package).
func (l *Loader) LoadDir(rel string) (*Package, error) {
	rel = filepath.ToSlash(rel)
	switch {
	case rel == "." || rel == "":
		return l.Load(l.module)
	case l.module != "":
		return l.Load(l.module + "/" + rel)
	default:
		return l.Load(rel)
	}
}

// LoadAll discovers and loads every package under the module root,
// skipping testdata, hidden directories, and directories without
// non-test Go files. Packages come back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		var ip string
		switch {
		case rel == ".":
			ip = l.module
		case l.module != "":
			ip = l.module + "/" + rel
		default:
			ip = rel
		}
		for _, have := range paths {
			if have == ip {
				return nil
			}
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// RunAnalyzers applies each analyzer to each package, returning all
// diagnostics in deterministic order.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}
