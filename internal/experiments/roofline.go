package experiments

import (
	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/model"
)

func init() {
	register("roofline", rooflineAnalysis)
}

// rooflineAnalysis reproduces the §VI bandwidth-bound argument
// quantitatively: the Orin's FLOPs-to-bytes machine balance (~1375 for
// FP16 tensor ops against LPDDR5) versus the arithmetic intensity of each
// phase, classifying every (model, phase, batch) point as compute- or
// bandwidth-bound.
func rooflineAnalysis(opts Options) ([]Table, error) {
	d := hw.JetsonAGXOrin64GB()
	sim := gpusim.New(d)

	balance := Table{
		ID: "roofline_machine", Title: "Machine balance (paper §VI: ~1375 FLOP/byte for FP16 tensor ops)",
		Columns: []string{"quantity", "value"},
	}
	machineBalance := d.PeakFP16FLOPS / d.MemBandwidth
	balance.AddRow("peak_fp16_tflops", f1(d.PeakFP16FLOPS/1e12))
	balance.AddRow("mem_bandwidth_gbps", f1(d.MemBandwidth/1e9))
	balance.AddRow("machine_balance_flop_per_byte", f1(machineBalance))
	balance.AddRow("effective_balance_flop_per_byte", f1(d.EffectiveFP16FLOPS()/d.EffectiveBandwidth()))

	phases := Table{
		ID: "roofline_phases", Title: "Arithmetic intensity by phase (bound = compute when AI > machine balance)",
		Columns: []string{"model", "phase", "batch", "ai_flop_per_byte", "bound"},
	}
	classify := func(ai float64) string {
		if ai > machineBalance {
			return "compute"
		}
		return "bandwidth"
	}
	for _, spec := range model.DSR1Family() {
		pre := sim.Prefill(spec.Arch, spec.DType, 2048, 1)
		aiPre := pre.FLOPs / pre.Bytes
		phases.AddRow(string(spec.ID), "prefill@2048", "1", f1(aiPre), classify(aiPre))
		for _, batch := range []int{1, 8, 64} {
			dec := sim.DecodeRun(spec.Arch, spec.DType, 512, 256, batch)
			ai := dec.FLOPs / dec.Bytes
			phases.AddRow(string(spec.ID), "decode@512ctx", di(batch), f1(ai), classify(ai))
		}
	}
	return []Table{balance, phases}, nil
}
