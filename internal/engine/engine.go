// Package engine is the simulated serving engine: a vLLM-style runtime
// that admits requests, prefills prompts, decodes with continuous
// batching over a paged KV cache, and accounts wall time, power, and
// energy through the GPU simulator. It is the substrate every
// latency/energy experiment in the paper runs on.
package engine

import (
	"fmt"

	"edgereasoning/internal/gpusim"
	"edgereasoning/internal/hw"
	"edgereasoning/internal/kvcache"
	"edgereasoning/internal/model"
	"edgereasoning/internal/power"
	"edgereasoning/internal/telemetry"
)

// Overhead models a host-side inference framework's cost on top of the
// raw kernels: the Table IX comparison (HF Transformers vs vLLM vs
// TRT-LLM) reduces to these terms.
type Overhead struct {
	Name          string
	PrefillFactor float64 // multiplies prefill time (graph build, tokenizer)
	StepFactor    float64 // multiplies per-step decode kernel time
	PerStepHost   float64 // seconds of host work added per decode step
}

// VLLM is the baseline framework profile (the paper's engine).
func VLLM() Overhead { return Overhead{Name: "vLLM", PrefillFactor: 1, StepFactor: 1} }

// normalized returns the profile with zero fields defaulted to identity.
func (o Overhead) normalized() Overhead {
	if o.PrefillFactor == 0 {
		o.PrefillFactor = 1
	}
	if o.StepFactor == 0 {
		o.StepFactor = 1
	}
	if o.Name == "" {
		o.Name = "vLLM"
	}
	return o
}

// Config assembles an engine.
type Config struct {
	Spec   model.Spec
	Device *hw.Device
	// BlockSize is the KV page size in tokens (default 16).
	BlockSize int
	// MemReserve is the fraction of DRAM withheld from the KV cache for
	// activations and runtime overheads (default 0.10).
	MemReserve float64
	// Framework is the host-side overhead profile (default vLLM).
	Framework Overhead
	// PrefixCache attaches a cross-request prefix index to the KV cache:
	// completed sequences retain their blocks content-addressed, and a
	// later request whose PromptSyms share a prefix only prefills the
	// unmatched suffix (vLLM automatic-prefix-caching style). Off by
	// default; requests without PromptSyms are unaffected either way.
	PrefixCache bool
	// DeviceBlocks caps the KV cache at this many blocks when positive
	// and below the DRAM-derived size — the device-memory sweep knob for
	// tiering studies. Values at or above the derived size are ignored.
	DeviceBlocks int
	// HostTierBlocks, when positive, attaches a host-DRAM second tier of
	// that many blocks behind the prefix index: on device pressure, cold
	// prefix entries demote to host instead of dropping, and a later
	// matching request promotes them back, paying the restore cost.
	// Requires PrefixCache.
	HostTierBlocks int
	// HostLinkBandwidth is the host<->device link rate in bytes/second
	// used to price promotions (default kvcache.DefaultHostLinkBandwidth).
	HostLinkBandwidth float64
	// Trace, when non-nil, records per-request phase spans and sampled
	// gauges (KV occupancy, active batch, power) from every serve run
	// into the given telemetry track. Nil is the default and costs
	// nothing: every producer site is a nil check, the serve loop's
	// timing and metrics are byte-identical either way.
	Trace telemetry.Tracer
}

// Request is one generation job. OutputTokens is decided ahead of
// execution by the model twin (the engine transports tokens; it does not
// decide how many the model emits).
type Request struct {
	ID           string
	PromptTokens int
	OutputTokens int
}

// Metrics reports one completed request.
type Metrics struct {
	ID           string
	PromptTokens int
	OutputTokens int
	QueueTime    float64 // seconds waiting for admission
	PrefillTime  float64
	DecodeTime   float64
	// RestoreTime is the host-link transfer time spent promoting this
	// request's host-resident prefix blocks back to the device (0 without
	// a host tier or on a device-only hit). It lands before prefill, so
	// it is part of the request's TTFT.
	RestoreTime   float64
	PrefillEnergy float64 // joules
	DecodeEnergy  float64
	// CachedPromptTokens counts prompt tokens served from the prefix
	// cache instead of being prefilled (0 without a prefix cache).
	CachedPromptTokens int
}

// TotalTime is the request's service latency (restore + prefill +
// decode).
func (m Metrics) TotalTime() float64 { return m.RestoreTime + m.PrefillTime + m.DecodeTime }

// TTFT is the time from admission to the first generated token:
// host-tier restore plus prefill.
func (m Metrics) TTFT() float64 { return m.RestoreTime + m.PrefillTime }

// Latency includes queueing.
func (m Metrics) Latency() float64 { return m.QueueTime + m.TotalTime() }

// Energy is the request's total energy in joules.
func (m Metrics) Energy() float64 { return m.PrefillEnergy + m.DecodeEnergy }

// TPS is the output tokens per second of service time.
func (m Metrics) TPS() float64 {
	if t := m.TotalTime(); t > 0 {
		return float64(m.OutputTokens) / t
	}
	return 0
}

// BatchMetrics reports a whole workload run.
type BatchMetrics struct {
	Requests    []Metrics
	WallTime    float64 // seconds from first admission to last completion
	TotalEnergy float64 // joules
	// TotalTokens counts prompt + generated tokens (the unit the cost
	// study bills).
	TotalTokens int
	// PeakKVBlocks is the cache high-water mark.
	PeakKVBlocks int
}

// AvgPower returns mean power over the busy window.
func (b BatchMetrics) AvgPower() float64 {
	if b.WallTime <= 0 {
		return 0
	}
	return b.TotalEnergy / b.WallTime
}

// OutputTokens sums generated tokens.
func (b BatchMetrics) OutputTokens() int {
	n := 0
	for _, m := range b.Requests {
		n += m.OutputTokens
	}
	return n
}

// UserTPS is the mean per-request decode throughput (the "User TPS" row
// of Table III).
func (b BatchMetrics) UserTPS() float64 {
	if len(b.Requests) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range b.Requests {
		if m.DecodeTime > 0 {
			sum += float64(m.OutputTokens) / m.DecodeTime
		}
	}
	return sum / float64(len(b.Requests))
}

// Engine executes requests on the simulated device.
type Engine struct {
	cfg   Config
	sim   *gpusim.Sim
	meter *power.Meter
	cache *kvcache.Cache
	// prefix is the cross-request prefix index (nil unless
	// Config.PrefixCache is set).
	prefix *kvcache.PrefixIndex
	clock  float64
}

// New builds an engine, verifying the model fits the device and sizing
// the KV cache from leftover DRAM.
func New(cfg Config) (*Engine, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("engine: nil device")
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Spec.Arch.Validate(); err != nil {
		return nil, err
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 16
	}
	if cfg.MemReserve <= 0 {
		cfg.MemReserve = 0.10
	}
	cfg.Framework = cfg.Framework.normalized()
	if cfg.HostTierBlocks > 0 && !cfg.PrefixCache {
		return nil, fmt.Errorf("engine: HostTierBlocks requires PrefixCache (the tier holds prefix entries)")
	}

	cache, prefix, err := buildCache(cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:    cfg,
		sim:    gpusim.New(cfg.Device),
		meter:  power.NewMeter(cfg.Device),
		cache:  cache,
		prefix: prefix,
	}, nil
}

// buildCache sizes the KV cache from leftover DRAM (capped by
// DeviceBlocks when set) and attaches the prefix index and host tier
// per cfg. New and Reset share it so a reset engine is sized exactly
// like a fresh one.
func buildCache(cfg Config) (*kvcache.Cache, *kvcache.PrefixIndex, error) {
	weights := cfg.Spec.Arch.WeightBytes(cfg.Spec.DType)
	reserve := int64(float64(cfg.Device.MemCapacity) * cfg.MemReserve)
	kvBudget := cfg.Device.MemCapacity - weights - reserve
	if kvBudget <= 0 {
		return nil, nil, fmt.Errorf("engine: %s (%0.1f GB weights) does not fit %s",
			cfg.Spec.ID, float64(weights)/1e9, cfg.Device.Name)
	}
	cacheCfg := kvcache.ConfigForMemory(kvBudget, cfg.BlockSize, cfg.Spec.Arch.KVBytesPerToken())
	if cfg.DeviceBlocks > 0 && cfg.DeviceBlocks < cacheCfg.NumBlocks {
		cacheCfg.NumBlocks = cfg.DeviceBlocks
	}
	cache, err := kvcache.New(cacheCfg)
	if err != nil {
		return nil, nil, err
	}
	var prefix *kvcache.PrefixIndex
	if cfg.PrefixCache {
		prefix = kvcache.NewPrefixIndex(cache)
		if cfg.HostTierBlocks > 0 {
			err := prefix.AttachHostTier(kvcache.HostTierConfig{
				Blocks:        cfg.HostTierBlocks,
				LinkBandwidth: cfg.HostLinkBandwidth,
			})
			if err != nil {
				return nil, nil, err
			}
		}
	}
	return cache, prefix, nil
}

// Spec returns the engine's model.
func (e *Engine) Spec() model.Spec { return e.cfg.Spec }

// Device returns the engine's device.
func (e *Engine) Device() *hw.Device { return e.cfg.Device }

// Meter exposes the power meter (read-only use).
func (e *Engine) Meter() *power.Meter { return e.meter }

// Clock returns the simulated time in seconds.
func (e *Engine) Clock() float64 { return e.clock }

// Reset rewinds the clock and empties the cache.
func (e *Engine) Reset() error {
	cache, prefix, err := buildCache(e.cfg)
	if err != nil {
		return err
	}
	e.cache = cache
	e.prefix = prefix
	e.clock = 0
	return nil
}

// MemReserveFrac exposes the configured reserve fraction.
func (c Config) MemReserveFrac() float64 {
	if c.MemReserve <= 0 {
		return 0.10
	}
	return c.MemReserve
}

// prefill runs a prompt through the simulator and charges framework
// overhead.
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (e *Engine) prefill(tokens int) (gpusim.Result, error) {
	res := e.sim.Prefill(e.cfg.Spec.Arch, e.cfg.Spec.DType, tokens, 1)
	res.Time *= e.cfg.Framework.PrefillFactor
	return res, nil
}

// decodeChunk advances the active contexts n steps and charges framework
// overhead.
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func (e *Engine) decodeChunk(ctxs []int, n int) gpusim.Result {
	res := e.sim.DecodeChunk(e.cfg.Spec.Arch, e.cfg.Spec.DType, ctxs, n)
	res.Time = res.Time*e.cfg.Framework.StepFactor + float64(n)*e.cfg.Framework.PerStepHost
	return res
}

// Generate executes one request in isolation (batch 1).
func (e *Engine) Generate(req Request) (Metrics, error) {
	b, err := e.Run([]Request{req}, 1)
	if err != nil {
		return Metrics{}, err
	}
	return b.Requests[0], nil
}

// activeSeq is a request mid-decode. The KV handle is resolved once at
// admission so the decode loop never touches the cache's sequence map;
// arrival/deadline ride along here instead of in side maps.
type activeSeq struct {
	req       Request
	handle    kvcache.Handle
	ctx       int // prompt + generated so far
	remaining int
	metrics   Metrics
	arrival   float64
	deadline  float64
	// slot is the arena index this sequence occupies, so the streaming
	// serve loop can return it to the free list on completion (Run's
	// one-shot arena leaves it zero).
	slot int
	// admitAt is the clock at the admission decision (the request span's
	// start when tracing); session carries the request's session tag for
	// span attribution. Both are plain copies — no tracing cost when off.
	admitAt float64
	session string
	// promptSyms/outputSyms carry the request's token identities so the
	// finished sequence can be retained in the prefix index (nil when the
	// engine has no prefix cache or the request carried none).
	promptSyms []uint64
	outputSyms []uint64
}

// reap records every completed sequence (remaining <= 0) through finish —
// in descending index order, matching the historical deletion loop so
// completion-ordered outputs are unchanged — then compacts the active
// set in one order-preserving, allocation-free pass.
//
//edgereasoning:hotpath bench=BenchmarkServeHotLoop
func reap(active []*activeSeq, finish func(*activeSeq) error) ([]*activeSeq, error) {
	done := 0
	for i := len(active) - 1; i >= 0; i-- {
		if active[i].remaining <= 0 {
			if err := finish(active[i]); err != nil {
				return active, err
			}
			done++
		}
	}
	if done == 0 {
		return active, nil
	}
	kept := active[:0]
	for _, s := range active {
		if s.remaining > 0 {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(active); i++ {
		active[i] = nil // no stale pointers past the compacted tail
	}
	return kept, nil
}

// Run executes requests FCFS with continuous batching up to maxBatch
// concurrent decoders. Prefill is unbatched (the paper's configuration);
// decode advances in closed-form chunks between admission and completion
// events, with chunk energy attributed to active sequences equally. The
// loop is O(events), not O(tokens): KV accounting advances whole chunks
// through resolved handles and admission headroom is an incrementally
// maintained counter.
func (e *Engine) Run(reqs []Request, maxBatch int) (BatchMetrics, error) {
	if maxBatch <= 0 {
		maxBatch = 1
	}
	queue := reqs // only re-sliced, never mutated
	active := make([]*activeSeq, 0, maxBatch)
	// One arena allocation covers every sequence's bookkeeping; slots are
	// handed out at admission and the backing array never reallocates, so
	// the *activeSeq pointers in the active set stay stable.
	arena := make([]activeSeq, len(reqs))
	admitted := 0
	var out BatchMetrics
	out.Requests = make([]Metrics, 0, len(reqs))
	start := e.clock

	finish := func(s *activeSeq) error {
		if err := e.cache.FreeH(s.handle); err != nil {
			return err
		}
		out.Requests = append(out.Requests, s.metrics)
		out.TotalTokens += s.req.PromptTokens + s.req.OutputTokens
		return nil
	}

	// blocksFor mirrors the cache's page arithmetic for admission control.
	blocksFor := func(tokens int) int {
		if tokens <= 0 {
			return 0
		}
		return (tokens + e.cfg.BlockSize - 1) / e.cfg.BlockSize
	}
	// futureGrowth is the worst-case block demand of the active set's
	// remaining decode. Admission reserves against it so a request can
	// never exhaust the cache mid-decode (the simulator's stand-in for
	// vLLM's preemption machinery). It is adjusted on admit and append —
	// a sequence's contribution is blocksFor(total) − blocksFor(ctx),
	// which reaches zero exactly when it finishes — instead of rescanned
	// per admission attempt.
	futureGrowth := 0
	ctxs := make([]int, 0, maxBatch) // scratch, reused every decode event

	for len(queue) > 0 || len(active) > 0 {
		// Admit while there is room.
		for len(queue) > 0 && len(active) < maxBatch {
			req := queue[0]
			if req.PromptTokens <= 0 {
				return out, fmt.Errorf("engine: request %q has no prompt", req.ID)
			}
			worstCase := blocksFor(req.PromptTokens + req.OutputTokens)
			if worstCase+futureGrowth > e.cache.FreeBlocks() {
				if len(active) > 0 {
					break // drain the active set to free capacity first
				}
				return out, fmt.Errorf("engine: request %q (%d tokens) exceeds KV capacity even alone",
					req.ID, req.PromptTokens+req.OutputTokens)
			}
			if err := e.cache.AllocateReserve(req.ID, req.PromptTokens,
				req.PromptTokens+req.OutputTokens); err != nil {
				return out, fmt.Errorf("engine: admit %q: %w", req.ID, err)
			}
			queue = queue[1:]
			s := &arena[admitted]
			admitted++
			*s = activeSeq{req: req, ctx: req.PromptTokens, remaining: req.OutputTokens}
			h, err := e.cache.Lookup(req.ID)
			if err != nil {
				return out, fmt.Errorf("engine: admit %q: %w", req.ID, err)
			}
			s.handle = h
			// The final length is known up front; reserving the block
			// table now keeps the whole decode allocation-free.
			if err := e.cache.ReserveH(h, req.PromptTokens+req.OutputTokens); err != nil {
				return out, fmt.Errorf("engine: admit %q: %w", req.ID, err)
			}
			futureGrowth += worstCase - blocksFor(req.PromptTokens)
			s.metrics = Metrics{ID: req.ID, PromptTokens: req.PromptTokens, OutputTokens: req.OutputTokens}
			s.metrics.QueueTime = e.clock - start
			res, err := e.prefill(req.PromptTokens)
			if err != nil {
				return out, err
			}
			e.clock += res.Time
			s.metrics.PrefillTime = res.Time
			s.metrics.PrefillEnergy = e.meter.Energy(res)
			out.TotalEnergy += e.meter.Energy(res)
			active = append(active, s)
		}
		if len(active) == 0 {
			break
		}
		// Decode until the next event: shortest remaining completes, or a
		// queued request wants admission (chunk at most admitGrain steps
		// so admission latency stays bounded).
		chunk := active[0].remaining
		for _, s := range active {
			if s.remaining < chunk {
				chunk = s.remaining
			}
		}
		if chunk <= 0 {
			// Zero-output request(s): finish immediately.
			var err error
			if active, err = reap(active, finish); err != nil {
				return out, err
			}
			continue
		}
		if len(queue) > 0 && len(active) < maxBatch {
			const admitGrain = 32
			if chunk > admitGrain {
				chunk = admitGrain
			}
		}
		ctxs = ctxs[:0]
		for _, s := range active {
			ctxs = append(ctxs, s.ctx)
		}
		res := e.decodeChunk(ctxs, chunk)
		energy := e.meter.Energy(res)
		e.clock += res.Time
		out.TotalEnergy += energy
		perSeqTime := res.Time
		perSeqEnergy := energy / float64(len(active))
		for _, s := range active {
			if err := e.cache.AppendTokensH(s.handle, chunk); err != nil {
				return out, fmt.Errorf("engine: decode %q: %w", s.req.ID, err)
			}
			futureGrowth -= blocksFor(s.ctx+chunk) - blocksFor(s.ctx)
			s.ctx += chunk
			s.remaining -= chunk
			s.metrics.DecodeTime += perSeqTime
			s.metrics.DecodeEnergy += perSeqEnergy
		}
		var err error
		if active, err = reap(active, finish); err != nil {
			return out, err
		}
	}
	out.WallTime = e.clock - start
	out.PeakKVBlocks = e.cache.PeakUsed()
	return out, nil
}

// RunParallel implements parallel test-time scaling (§V-E): one prefill
// at batch 1, then the prompt KV is forked copy-on-write to `factor`
// decoders which run as one batch. outputs gives each branch's generated
// length. The returned metrics hold one entry per branch; branch 0 owns
// the prefill cost.
func (e *Engine) RunParallel(promptTokens int, outputs []int) (BatchMetrics, error) {
	if promptTokens <= 0 {
		return BatchMetrics{}, fmt.Errorf("engine: empty prompt")
	}
	if len(outputs) == 0 {
		return BatchMetrics{}, fmt.Errorf("engine: no branches")
	}
	var out BatchMetrics
	start := e.clock

	// Capacity precheck: the shared prompt plus every branch's private
	// decode growth must fit, or the fan-out would die mid-decode.
	blocksFor := func(tokens int) int {
		if tokens <= 0 {
			return 0
		}
		return (tokens + e.cfg.BlockSize - 1) / e.cfg.BlockSize
	}
	need := blocksFor(promptTokens)
	for _, o := range outputs {
		// Each branch copies the shared tail block on first write and
		// then grows privately.
		need += blocksFor(promptTokens+o) - blocksFor(promptTokens) + 1
	}
	if need > e.cache.FreeBlocks() {
		return out, fmt.Errorf("engine: parallel fan-out of %d branches needs %d KV blocks, %d free",
			len(outputs), need, e.cache.FreeBlocks())
	}

	root := "par-0"
	if err := e.cache.Allocate(root, promptTokens); err != nil {
		return out, err
	}
	res, err := e.prefill(promptTokens)
	if err != nil {
		return out, err
	}
	e.clock += res.Time
	prefillEnergy := e.meter.Energy(res)
	out.TotalEnergy += prefillEnergy

	type branch struct {
		id        string
		handle    kvcache.Handle
		ctx       int
		remaining int
		m         Metrics
	}
	branches := make([]*branch, len(outputs))
	for i := range outputs {
		id := fmt.Sprintf("par-%d", i)
		if i > 0 {
			if err := e.cache.Fork(root, id); err != nil {
				return out, err
			}
		}
		h, err := e.cache.Lookup(id)
		if err != nil {
			return out, err
		}
		if err := e.cache.ReserveH(h, promptTokens+outputs[i]); err != nil {
			return out, err
		}
		branches[i] = &branch{id: id, handle: h, ctx: promptTokens, remaining: outputs[i]}
		branches[i].m = Metrics{ID: id, PromptTokens: promptTokens, OutputTokens: outputs[i]}
	}
	branches[0].m.PrefillTime = res.Time
	branches[0].m.PrefillEnergy = prefillEnergy

	activeIdx := make([]int, 0, len(branches))
	for i := range branches {
		if branches[i].remaining > 0 {
			activeIdx = append(activeIdx, i)
		} else {
			out.Requests = append(out.Requests, branches[i].m)
			out.TotalTokens += promptTokens + branches[i].m.OutputTokens
			if err := e.cache.FreeH(branches[i].handle); err != nil {
				return out, err
			}
		}
	}
	ctxs := make([]int, 0, len(activeIdx)) // scratch, reused every decode event
	for len(activeIdx) > 0 {
		chunk := branches[activeIdx[0]].remaining
		for _, i := range activeIdx {
			if branches[i].remaining < chunk {
				chunk = branches[i].remaining
			}
		}
		ctxs = ctxs[:0]
		for _, i := range activeIdx {
			ctxs = append(ctxs, branches[i].ctx)
		}
		dres := e.decodeChunk(ctxs, chunk)
		energy := e.meter.Energy(dres)
		e.clock += dres.Time
		out.TotalEnergy += energy
		perSeqEnergy := energy / float64(len(activeIdx))
		next := activeIdx[:0]
		for _, i := range activeIdx {
			b := branches[i]
			if err := e.cache.AppendTokensH(b.handle, chunk); err != nil {
				return out, err
			}
			b.ctx += chunk
			b.remaining -= chunk
			b.m.DecodeTime += dres.Time
			b.m.DecodeEnergy += perSeqEnergy
			if b.remaining <= 0 {
				out.Requests = append(out.Requests, b.m)
				out.TotalTokens += promptTokens + b.m.OutputTokens
				if err := e.cache.FreeH(b.handle); err != nil {
					return out, err
				}
			} else {
				next = append(next, i)
			}
		}
		activeIdx = next
	}
	out.WallTime = e.clock - start
	out.PeakKVBlocks = e.cache.PeakUsed()
	return out, nil
}

// CacheStats exposes KV occupancy for tests and examples.
func (e *Engine) CacheStats() kvcache.Stats { return e.cache.Stats() }

// PrefixMetrics exposes the engine-lifetime prefix-cache counters (zero
// value when the engine was built without Config.PrefixCache).
func (e *Engine) PrefixMetrics() kvcache.PrefixMetrics {
	if e.prefix == nil {
		return kvcache.PrefixMetrics{}
	}
	return e.prefix.Metrics()
}

// PeekPrefix reports how many leading blocks of syms are resident on
// the device and host tiers, without perturbing recency (both zero
// without a prefix cache). Routing layers use it to rank replicas by
// session warmth.
func (e *Engine) PeekPrefix(syms []uint64) (deviceBlocks, hostBlocks int) {
	if e.prefix == nil {
		return 0, 0
	}
	return e.prefix.Peek(syms)
}

// CrashResetPrefix crash-wipes the engine's prefix index (a no-op
// without one): device-resident entries are dropped — HBM does not
// survive a power loss — and keepHost preserves fully host-resident
// chains, modeling persistent host DRAM. Exposed for serving layers
// that model replica crashes outside a serve run; during a run the
// wipe is driven by ServeOpts.Faults crash markers instead.
func (e *Engine) CrashResetPrefix(keepHost bool) {
	if e.prefix != nil {
		e.prefix.CrashReset(keepHost)
	}
}

// SimDecodeProbe returns the raw simulator result of a representative
// decode run at the given geometry, so callers can inspect utilization
// and power signals without executing a request (used by the Fig 10
// driver for the GPU-utilization axis).
func (e *Engine) SimDecodeProbe(prompt, output, batch int) gpusim.Result {
	return e.sim.DecodeRun(e.cfg.Spec.Arch, e.cfg.Spec.DType, prompt, output, batch)
}
